//! The dense flow arena: stable integer handles and O(1) lookups.
//!
//! Every poll decision used to rediscover flows with `iter().find(...)`
//! scans and rebuild per-slave lists with fresh `Vec`s. [`FlowTable`]
//! precomputes all of that once per simulation:
//!
//! * a dense arena of [`FlowSpec`]s addressed by [`FlowIdx`] (a `u32`
//!   newtype), stable for the lifetime of the table;
//! * O(1) lookup by [`FlowId`] and by the `(slave, direction, channel)`
//!   triple the exchange machinery keys on;
//! * precomputed, sorted slave lists — overall and per logical channel —
//!   so pollers iterate slices instead of allocating;
//! * precomputed per-slave flow lists for predictor/fairness style pollers.

use crate::flow::{validate_flows, FlowSpec};
use btgs_baseband::{AmAddr, Direction, LogicalChannel};
use btgs_traffic::FlowId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Dense index of a flow within a [`FlowTable`] (and within the parallel
/// queue/report arrays of the simulator).
///
/// Indices are assigned in configuration order, so `FlowIdx(0)` is the
/// first configured flow. They are stable for the lifetime of the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowIdx(pub u32);

impl FlowIdx {
    /// The index as a `usize`, for addressing parallel arrays.
    #[inline]
    pub const fn get(self) -> usize {
        self.0 as usize
    }
}

/// Size of the flattened `(slave, direction, channel)` key table: the next
/// power of two above 7 slaves x 4 keys, so indexing can be masked instead
/// of bounds-checked.
const KEY_SLOTS: usize = 32;

/// Flattened key of a `(slave, direction, channel)` triple, always
/// `< KEY_SLOTS`. The `& (KEY_SLOTS - 1)` mask is a no-op for valid
/// addresses (1..=7) but lets the compiler drop the bounds check.
#[inline]
const fn key_of(slave: AmAddr, direction: Direction, channel: LogicalChannel) -> usize {
    let d = match direction {
        Direction::MasterToSlave => 0,
        Direction::SlaveToMaster => 1,
    };
    let c = match channel {
        LogicalChannel::GuaranteedService => 0,
        LogicalChannel::BestEffort => 1,
    };
    (((slave.get() as usize - 1) << 2) | (d << 1) | c) & (KEY_SLOTS - 1)
}

#[inline]
const fn slave_slot(slave: AmAddr) -> usize {
    (slave.get() - 1) as usize
}

/// Multiplicative hasher for `FlowId` keys: a `u32` id needs mixing, not
/// SipHash — on piconet-sized tables the default hasher costs more than the
/// linear scan it replaces. Shared with the scatternet's sharded arena.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FlowIdHasher(u64);

impl Hasher for FlowIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); `FlowId` hashes through `write_u32`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        // Fibonacci multiplicative hash: one multiply, well distributed.
        self.0 = u64::from(n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// How one flow id resolves to its dense index.
#[derive(Clone, Debug)]
enum IdIndex {
    /// Direct map for the common case of small ids: `dense[id] == idx`.
    /// A single masked array read — faster than any scan or hash.
    Dense(Vec<Option<FlowIdx>>),
    /// Fast-hash map for sparse id spaces.
    // analyze: allow(hash-iter): lookup-only — `get` resolves keyed ids and
    // nothing ever iterates the map; every ordered walk of the table goes
    // through the dense `specs` vec, so hash order cannot reach a report.
    Spread(HashMap<FlowId, FlowIdx, BuildHasherDefault<FlowIdHasher>>),
}

impl Default for IdIndex {
    fn default() -> Self {
        IdIndex::Dense(Vec::new())
    }
}

/// Largest id the direct map will spend memory on, relative to flow count.
const DENSE_ID_HEADROOM: usize = 64;

impl IdIndex {
    fn build(specs: &[FlowSpec]) -> IdIndex {
        let max_id = specs.iter().map(|f| f.id.0 as usize).max().unwrap_or(0);
        if max_id <= specs.len() * 8 + DENSE_ID_HEADROOM {
            let mut dense = vec![None; max_id + 1];
            for (i, f) in specs.iter().enumerate() {
                dense[f.id.0 as usize] = Some(FlowIdx(i as u32));
            }
            IdIndex::Dense(dense)
        } else {
            IdIndex::Spread(
                specs
                    .iter()
                    .enumerate()
                    .map(|(i, f)| (f.id, FlowIdx(i as u32)))
                    .collect(),
            )
        }
    }

    #[inline]
    fn get(&self, id: FlowId) -> Option<FlowIdx> {
        match self {
            IdIndex::Dense(dense) => *dense.get(id.0 as usize)?,
            IdIndex::Spread(map) => map.get(&id).copied(),
        }
    }
}

/// The dense flow arena of one piconet.
///
/// Built once (at configuration time) from the validated flow set; every
/// hot-path lookup is then O(1) and allocation-free:
///
/// ```
/// use btgs_piconet::{FlowSpec, FlowTable};
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel};
/// use btgs_traffic::FlowId;
///
/// let s = |n| AmAddr::new(n).unwrap();
/// let table = FlowTable::new(vec![
///     FlowSpec::new(FlowId(1), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService),
///     FlowSpec::new(FlowId(5), s(2), Direction::MasterToSlave, LogicalChannel::BestEffort),
/// ]).unwrap();
///
/// let idx = table.idx_of(FlowId(5)).unwrap();
/// assert_eq!(table.spec(idx).slave, s(2));
/// assert_eq!(table.slaves(), [s(1), s(2)]);
/// assert_eq!(table.slaves_on(LogicalChannel::BestEffort), [s(2)]);
/// assert_eq!(table.flows_of(s(2)), [idx]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    specs: Vec<FlowSpec>,
    by_id: IdIndex,
    /// Flattened `(slave, direction, channel) -> FlowIdx` map; see
    /// [`key_of`].
    by_key: [Option<FlowIdx>; KEY_SLOTS],
    /// Distinct slaves with at least one flow, in address order.
    slaves: Vec<AmAddr>,
    /// Distinct slaves with at least one GS flow, in address order.
    slaves_gs: Vec<AmAddr>,
    /// Distinct slaves with at least one BE flow, in address order.
    slaves_be: Vec<AmAddr>,
    /// Flow indices grouped by slave: `per_slave[slave_slot]` lists the
    /// flows of that slave in configuration (= index) order.
    per_slave: [Vec<FlowIdx>; AmAddr::MAX_SLAVES],
}

impl FlowTable {
    /// Builds the table from a flow set, validating it first (see
    /// [`validate_flows`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated flow-set
    /// rule.
    pub fn new(flows: Vec<FlowSpec>) -> Result<FlowTable, String> {
        validate_flows(&flows)?;
        Ok(FlowTable::from_validated(flows))
    }

    /// Builds the table from a flow set the caller has already validated
    /// (e.g. via [`validate_flows`] as part of a wider config check).
    pub(crate) fn from_validated(flows: Vec<FlowSpec>) -> FlowTable {
        debug_assert!(validate_flows(&flows).is_ok());
        let mut table = FlowTable {
            by_id: IdIndex::build(&flows),
            specs: flows,
            ..FlowTable::default()
        };
        for (i, f) in table.specs.iter().enumerate() {
            let idx = FlowIdx(i as u32);
            table.by_key[key_of(f.slave, f.direction, f.channel)] = Some(idx);
            table.per_slave[slave_slot(f.slave)].push(idx);
            for (list, relevant) in [
                (&mut table.slaves, true),
                (&mut table.slaves_gs, f.channel.is_gs()),
                (&mut table.slaves_be, !f.channel.is_gs()),
            ] {
                if relevant {
                    if let Err(pos) = list.binary_search(&f.slave) {
                        list.insert(pos, f.slave);
                    }
                }
            }
        }
        table
    }

    /// Number of flows in the table.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if the table holds no flows.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// All flow specs, in index order.
    #[inline]
    pub fn specs(&self) -> &[FlowSpec] {
        &self.specs
    }

    /// The spec of a flow by dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (indices from *another* table are
    /// not valid here).
    #[inline]
    pub fn spec(&self, idx: FlowIdx) -> &FlowSpec {
        &self.specs[idx.get()]
    }

    /// The id of a flow by dense index.
    #[inline]
    pub fn id(&self, idx: FlowIdx) -> FlowId {
        self.specs[idx.get()].id
    }

    /// Dense index of a flow id, O(1).
    #[inline]
    pub fn idx_of(&self, id: FlowId) -> Option<FlowIdx> {
        self.by_id.get(id)
    }

    /// Dense index of the unique flow at `(slave, direction, channel)`,
    /// O(1).
    #[inline]
    pub fn at(
        &self,
        slave: AmAddr,
        direction: Direction,
        channel: LogicalChannel,
    ) -> Option<FlowIdx> {
        self.by_key[key_of(slave, direction, channel)]
    }

    /// Iterates `(idx, spec)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowIdx, &FlowSpec)> {
        self.specs
            .iter()
            .enumerate()
            .map(|(i, f)| (FlowIdx(i as u32), f))
    }

    /// The distinct slaves with at least one flow, in address order.
    #[inline]
    pub fn slaves(&self) -> &[AmAddr] {
        &self.slaves
    }

    /// The distinct slaves with at least one flow on `channel`, in address
    /// order.
    #[inline]
    pub fn slaves_on(&self, channel: LogicalChannel) -> &[AmAddr] {
        match channel {
            LogicalChannel::GuaranteedService => &self.slaves_gs,
            LogicalChannel::BestEffort => &self.slaves_be,
        }
    }

    /// The flows of one slave, in index order (empty for slaves without
    /// flows).
    #[inline]
    pub fn flows_of(&self, slave: AmAddr) -> &[FlowIdx] {
        &self.per_slave[slave_slot(slave)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn paper_like() -> Vec<FlowSpec> {
        vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::MasterToSlave,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(3),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(5),
                s(4),
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(6),
                s(4),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ]
    }

    #[test]
    fn id_and_key_lookups_agree_with_linear_scan() {
        let flows = paper_like();
        let table = FlowTable::new(flows.clone()).unwrap();
        assert_eq!(table.len(), flows.len());
        for (i, f) in flows.iter().enumerate() {
            let idx = table.idx_of(f.id).unwrap();
            assert_eq!(idx, FlowIdx(i as u32));
            assert_eq!(table.spec(idx), f);
            assert_eq!(table.id(idx), f.id);
            assert_eq!(table.at(f.slave, f.direction, f.channel), Some(idx));
        }
        assert!(table.idx_of(FlowId(99)).is_none());
        assert!(table
            .at(s(7), Direction::SlaveToMaster, LogicalChannel::BestEffort)
            .is_none());
    }

    #[test]
    fn slave_lists_are_sorted_and_channel_split() {
        let table = FlowTable::new(paper_like()).unwrap();
        assert_eq!(table.slaves(), [s(1), s(2), s(4)]);
        assert_eq!(
            table.slaves_on(LogicalChannel::GuaranteedService),
            [s(1), s(2)]
        );
        assert_eq!(table.slaves_on(LogicalChannel::BestEffort), [s(4)]);
    }

    #[test]
    fn per_slave_lists_are_complete() {
        let table = FlowTable::new(paper_like()).unwrap();
        assert_eq!(table.flows_of(s(2)), [FlowIdx(1), FlowIdx(2)]);
        assert_eq!(table.flows_of(s(4)), [FlowIdx(3), FlowIdx(4)]);
        assert!(table.flows_of(s(7)).is_empty());
        let total: usize = (1..=7).map(|n| table.flows_of(s(n)).len()).sum();
        assert_eq!(total, table.len());
    }

    #[test]
    fn rejects_invalid_flow_sets() {
        let dup = vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(1),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ];
        assert!(FlowTable::new(dup).is_err());
    }

    #[test]
    fn empty_table() {
        let table = FlowTable::new(Vec::new()).unwrap();
        assert!(table.is_empty());
        assert!(table.slaves().is_empty());
        assert!(table.iter().next().is_none());
    }
}
