//! The atomics protocols of the parallel island engine, extracted behind a
//! small trait seam.
//!
//! Everything the scatternet engine's byte-identity claim rests on — the
//! [`barrier_wait`] generation protocol, the [`claim_next`] atomic-cursor
//! island claiming, and the [`publish_staged`]/[`collect_staged`]
//! staged-relay flag protocol — lives here as plain functions generic over [`SyncCell`]
//! and [`SyncEnv`]. The engine instantiates them with hardware atomics
//! ([`AtomicU64`] plus the adaptive spin/yield/backoff waiter), which
//! monomorphises to exactly the code the engine ran before the extraction.
//! `btgs-analyze`'s model checker instantiates the *same functions* with
//! modeled memory cells and a schedule-exploring environment, so every
//! interleaving the bounded DFS visits exercises the actual protocol logic,
//! not a transcription of it.
//!
//! The memory orderings are parameters ([`BarrierOrderings`]) rather than
//! literals so the checker can also run the deliberately weakened variants
//! ([`BarrierOrderings::WEAK_SPIN`], [`BarrierOrderings::WEAK_ARRIVE`]) and
//! prove it would catch the corresponding real-world regressions. The
//! engine only ever passes [`BarrierOrderings::SOUND`], a `const`, so the
//! parameterisation folds away.

use std::sync::atomic::{AtomicU64, Ordering};

/// One shared atomic word of a protocol, as the protocol logic sees it.
///
/// Hardware implementation: [`AtomicU64`]. Model implementation (in
/// `btgs-analyze`): a handle into the checker's vector-clocked memory whose
/// every call is a scheduler yield point.
pub trait SyncCell {
    /// Atomic load with the given ordering.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store with the given ordering.
    fn store(&self, value: u64, order: Ordering);
    /// Atomic fetch-add; returns the previous value.
    fn fetch_add(&self, value: u64, order: Ordering) -> u64;
}

impl SyncCell for AtomicU64 {
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }

    #[inline]
    fn store(&self, value: u64, order: Ordering) {
        AtomicU64::store(self, value, order)
    }

    #[inline]
    fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, value, order)
    }
}

/// The scheduling side of a protocol: how a thread waits for another
/// thread's store. Separated from the protocol logic because it is policy
/// (how hard to spin) rather than correctness (what to wait for).
pub trait SyncEnv {
    /// The cell type this environment waits on.
    type Cell: SyncCell;

    /// Blocks until a load of `cell` with `order` observes a value
    /// different from `old`, and returns that value.
    ///
    /// The hardware implementation is the adaptive spin → yield →
    /// exponential-backoff loop; the model implementation lets the
    /// checker's scheduler pick which qualifying store the load reads.
    fn wait_until_changed(&self, cell: &Self::Cell, old: u64, order: Ordering) -> u64;
}

/// The memory orderings of the barrier protocol, as data.
///
/// Each field is one ordering decision in [`barrier_wait`]; the inline
/// `ord:` comments at the use sites justify the [`SOUND`] choice, and the
/// model checker demonstrates the weakened variants break the protocol's
/// publish-visibility guarantee under explored schedules.
///
/// [`SOUND`]: BarrierOrderings::SOUND
#[derive(Clone, Copy, Debug)]
pub struct BarrierOrderings {
    /// The generation load on entry, before arriving.
    pub enter: Ordering,
    /// The arrival `count.fetch_add`.
    pub arrive: Ordering,
    /// The releaser's `count.store(0)` reset.
    pub reset: Ordering,
    /// The releaser's `generation.fetch_add` release.
    pub release: Ordering,
    /// The waiters' generation loads while spinning.
    pub spin: Ordering,
}

impl BarrierOrderings {
    /// The production orderings; every choice is justified at its use site
    /// in [`barrier_wait`] and validated by `btgs-analyze`'s exhaustive
    /// small-model check.
    pub const SOUND: BarrierOrderings = BarrierOrderings {
        enter: Ordering::Acquire,   // ord: justified at the use site in barrier_wait
        arrive: Ordering::AcqRel,   // ord: justified at the use site in barrier_wait
        reset: Ordering::Relaxed,   // ord: justified at the use site in barrier_wait
        release: Ordering::Release, // ord: justified at the use site in barrier_wait
        spin: Ordering::Acquire,    // ord: justified at the use site in barrier_wait
    };

    /// Deliberately broken: waiters spin with `Relaxed` generation loads,
    /// so clearing the barrier no longer synchronises with the releaser
    /// and pre-barrier publishes by other threads may be invisible after
    /// it. The model checker must find a counterexample for this variant
    /// (regression-tested) — it is the exact bug a future contributor
    /// could introduce by "optimising" the spin loop.
    pub const WEAK_SPIN: BarrierOrderings = BarrierOrderings {
        spin: Ordering::Relaxed, // ord: deliberately unsound — checker fixture
        ..BarrierOrderings::SOUND
    };

    /// Deliberately broken the other way: `Relaxed` arrivals, so the
    /// *releaser* (who never spins) is no longer ordered after the other
    /// threads' pre-barrier publishes.
    pub const WEAK_ARRIVE: BarrierOrderings = BarrierOrderings {
        arrive: Ordering::Relaxed, // ord: deliberately unsound — checker fixture
        ..BarrierOrderings::SOUND
    };
}

/// One barrier crossing of the generation protocol.
///
/// `n` threads call this per round; the last arrival resets the count and
/// bumps the generation, releasing the rest. Returns the generation the
/// caller observed on clearing the barrier (entry generation + 1 in every
/// sound schedule — checked by the model's no-generation-skip assertion).
///
/// Guarantees (with [`BarrierOrderings::SOUND`], model-checked
/// exhaustively at 2–4 threads):
///
/// * **no lost wakeup** — every thread clears every round (no schedule
///   deadlocks);
/// * **no generation skip** — the observed generation is exactly one past
///   the entry generation;
/// * **publish visibility** — every write sequenced before any thread's
///   crossing is visible to every thread after it.
pub fn barrier_wait<E: SyncEnv>(
    env: &E,
    count: &E::Cell,
    generation: &E::Cell,
    n: u64,
    ord: &BarrierOrderings,
) -> u64 {
    // ord: Acquire — pairs with the previous round's Release bump: a thread
    // racing into round g+1 must order its arrival after observing g+1, or
    // it could arrive against the previous round's count.
    let entry = generation.load(ord.enter);
    // ord: AcqRel — the Release half publishes this thread's pre-barrier
    // writes into the count cell's release sequence (each arrival extends
    // it), and the Acquire half makes the *last* arrival — which never
    // spins — acquire every earlier arrival's publishes through that
    // sequence. Weakening this to Relaxed loses the releaser's visibility
    // (the model checker's WEAK_ARRIVE counterexample).
    if count.fetch_add(1, ord.arrive) + 1 == n {
        // ord: Relaxed is sufficient — this reset is sequenced before the
        // Release generation bump below, so any thread that enters the
        // next round (it must first observe the bump with Acquire) has the
        // reset ordered before its arrival; write-write coherence then
        // places the reset before that arrival in the count cell's
        // modification order. Model-checked: no schedule loses an arrival.
        count.store(0, ord.reset);
        // ord: Release — the bump is the barrier's publication point: it
        // carries every pre-barrier write (own and, via the acquiring
        // fetch_add above, everyone else's) to the spinning waiters.
        generation.fetch_add(1, ord.release);
        entry + 1
    } else {
        // ord: Acquire — the spin load that clears the barrier pairs with
        // the Release bump, making all pre-barrier publishes visible.
        // Relaxed here is the classic silent breakage (WEAK_SPIN): the
        // waiter leaves the barrier without synchronising.
        env.wait_until_changed(generation, entry, ord.spin)
    }
}

/// The memory orderings of the staged-relay publish protocol, as data.
///
/// Workers stage cross-island relays under their island's lock, then raise
/// the island's staged flag; the coordinator drains flagged islands after
/// the round's barrier crossing (stage → publish → **barrier** → collect).
/// As with [`BarrierOrderings`], the orderings are parameters so
/// `btgs-analyze` can run the production choice and the deliberately
/// weakened fixture through the same functions.
#[derive(Clone, Copy, Debug)]
pub struct StagedOrderings {
    /// The worker's flag store after staging relays.
    pub publish: Ordering,
    /// The coordinator's flag load at collect time.
    pub collect: Ordering,
    /// The coordinator's flag reset after a positive collect.
    pub reset: Ordering,
}

impl StagedOrderings {
    /// The production orderings; justified at the use sites in
    /// [`publish_staged`] and [`collect_staged`], and validated by the
    /// `btgs-analyze` staged-publish model scenario.
    pub const SOUND: StagedOrderings = StagedOrderings {
        publish: Ordering::Release, // ord: justified at the use site in publish_staged
        collect: Ordering::Acquire, // ord: justified at the use site in collect_staged
        reset: Ordering::Relaxed,   // ord: justified at the use site in collect_staged
    };

    /// Deliberately broken: a `Relaxed` publish. Behind the engine's
    /// barrier crossing this is masked (the crossing orders everything),
    /// which is exactly why the model checker pairs it with the
    /// *early-collect* fixture — a coordinator that polls staged flags
    /// before the crossing, the tempting "skip the barrier" optimisation.
    /// The checker must refute that composition: the collect can read a
    /// raised flag while the staged data is still stale, or miss a
    /// publish outright.
    pub const WEAK_PUBLISH: StagedOrderings = StagedOrderings {
        publish: Ordering::Relaxed, // ord: deliberately unsound — checker fixture
        ..StagedOrderings::SOUND
    };
}

/// Raises an island's staged flag: the worker has pushed cross-island
/// relays that the coordinator must drain this round.
pub fn publish_staged<C: SyncCell>(flag: &C, ord: &StagedOrderings) {
    // ord: Release — pairs with the coordinator's Acquire collect load so
    // the staged relays written before the publish are ordered before the
    // drain. In the engine the intervening barrier crossing already
    // carries that ordering; the explicit Release keeps the protocol
    // self-contained — the early-collect model fixture shows what breaks
    // once the crossing is (wrongly) removed.
    flag.store(1, ord.publish);
}

/// Tests-and-clears an island's staged flag at collect time; `true` means
/// the island staged relays since the last collect.
pub fn collect_staged<C: SyncCell>(flag: &C, ord: &StagedOrderings) -> bool {
    // ord: Acquire — pairs with the workers' Release publish. A plain
    // load/store pair (no RMW) is sound here because only the coordinator
    // ever clears the flag, and the barrier crossing temporally separates
    // every worker publish from the collect — exactly the claim the
    // btgs-analyze staged-publish scenario checks exhaustively at 2–3
    // threads.
    if flag.load(ord.collect) == 0 {
        return false;
    }
    // ord: Relaxed — the reset races with nothing: workers are parked at
    // the next crossing until the coordinator arrives, and that crossing
    // orders the reset before any later publish of the same flag.
    flag.store(0, ord.reset);
    true
}

/// One claim off a shared work cursor: returns the claimed position, or
/// `None` once the cursor has run past `len`.
///
/// The claim is a bare `fetch_add` — atomicity alone partitions positions
/// across claimants (model-checked: claim sets are disjoint and cover
/// `0..len` under every explored schedule at 2–4 threads).
pub fn claim_next<C: SyncCell>(cursor: &C, len: u64, order: Ordering) -> Option<u64> {
    // ord: Relaxed is sufficient — uniqueness comes from RMW atomicity
    // (each fetch_add reads the latest value in the cell's modification
    // order), not from visibility; the island data a claim guards is
    // protected by the island's Mutex, and the coordinator's cursor reset
    // is ordered before all claims by the barrier crossing between them.
    // (Was AcqRel before the PR-8 audit: needlessly strong on a counter.)
    let i = cursor.fetch_add(1, order);
    if i < len {
        Some(i)
    } else {
        None
    }
}
