//! Piconet configuration.

use crate::flow::{validate_flows, FlowSpec};
use crate::sar::{AlwaysLargestPolicy, MaxFirstPolicy, SegmentationPolicy};
use btgs_baseband::{AmAddr, PacketType, PresenceWindow, ScoLink, SLOT};
use btgs_des::{SimDuration, SimTime};
use btgs_traffic::FlowId;
use core::fmt;

/// Error raised by configuration or simulation-setup validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PiconetError(pub String);

impl fmt::Display for PiconetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "piconet configuration error: {}", self.0)
    }
}

impl std::error::Error for PiconetError {}

/// The segmentation policy used by every queue in the piconet.
///
/// An enum (rather than a boxed trait) keeps configurations `Clone` for
/// parameter sweeps; both variants delegate to the policies in
/// [`crate::sar`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SarPolicy {
    /// The paper's policy: largest packet unless the remainder fits a
    /// smaller one.
    #[default]
    MaxFirst,
    /// Always the largest allowed packet (ablation baseline).
    AlwaysLargest,
}

impl SegmentationPolicy for SarPolicy {
    fn next_type(&self, remaining: u32, allowed: &[PacketType]) -> Option<PacketType> {
        match self {
            SarPolicy::MaxFirst => MaxFirstPolicy.next_type(remaining, allowed),
            SarPolicy::AlwaysLargest => AlwaysLargestPolicy.next_type(remaining, allowed),
        }
    }
}

/// A flow's allowed packet types, pre-filtered by every possible
/// per-direction slot budget of an exchange.
///
/// When the master sizes an ACL exchange it caps each direction at
/// `window / 2` slots (the room left before the next SCO reservation). ACL
/// packets occupy 1, 3 or 5 slots, so every cap collapses to one of three
/// classes: caps 1–2 admit only single-slot types, caps 3–4 also the
/// three-slot types, and caps ≥ 5 the full set. Precomputing the three
/// filtered sets once per flow (at simulator build time) replaces the
/// per-exchange filter-into-a-fresh-`Vec` that used to run twice per poll
/// in the simulator's hot loop.
///
/// # Examples
///
/// ```
/// use btgs_piconet::AllowedByCap;
/// use btgs_baseband::PacketType;
///
/// let table = AllowedByCap::new(&[PacketType::Dh1, PacketType::Dh3]);
/// assert_eq!(table.data_types(5), Some(&[PacketType::Dh1, PacketType::Dh3][..]));
/// assert_eq!(table.data_types(4), Some(&[PacketType::Dh1, PacketType::Dh3][..]));
/// assert_eq!(table.data_types(2), Some(&[PacketType::Dh1][..]));
///
/// // A 3-slot-only flow cannot transmit data through a 2-slot budget.
/// let dh3 = AllowedByCap::new(&[PacketType::Dh3]);
/// assert_eq!(dh3.data_types(2), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowedByCap {
    /// Filtered sets for caps of 1–2, 3–4 and ≥ 5 slots, in the original
    /// allowed-set order (control types included, exactly like the unfiltered
    /// set handed to the segmentation policy).
    sets: [Vec<PacketType>; 3],
    /// Whether the matching set contains a data-bearing type.
    has_data: [bool; 3],
}

impl AllowedByCap {
    /// Precomputes the per-cap filtered sets of `allowed`.
    pub fn new(allowed: &[PacketType]) -> AllowedByCap {
        let filter = |cap: u64| -> Vec<PacketType> {
            allowed
                .iter()
                .copied()
                .filter(|t| t.slots() <= cap)
                .collect()
        };
        let sets = [filter(1), filter(3), filter(5)];
        let has_data = [
            sets[0].iter().any(|t| t.is_acl_data()),
            sets[1].iter().any(|t| t.is_acl_data()),
            sets[2].iter().any(|t| t.is_acl_data()),
        ];
        AllowedByCap { sets, has_data }
    }

    #[inline]
    fn class(cap: u64) -> usize {
        if cap >= 5 {
            2
        } else if cap >= 3 {
            1
        } else {
            0
        }
    }

    /// The allowed types fitting a per-direction budget of `cap` slots, or
    /// `None` if no *data-bearing* type fits (the exchange then degrades to
    /// POLL/NULL signalling).
    #[inline]
    pub fn data_types(&self, cap: u64) -> Option<&[PacketType]> {
        if cap == 0 {
            return None;
        }
        let class = Self::class(cap);
        self.has_data[class].then_some(self.sets[class].as_slice())
    }
}

/// Per-slave presence schedule of one piconet.
///
/// Full-time slaves have no entry and are always present; a scatternet
/// bridge slave carries the [`PresenceWindow`] of its rendezvous schedule.
/// Every query is a couple of integer operations on a 7-entry array —
/// cheap enough for poller hot paths — and the default (all-present) mask
/// short-circuits to the exact pre-scatternet behaviour.
///
/// # Examples
///
/// ```
/// use btgs_piconet::PresenceMask;
/// use btgs_baseband::{AmAddr, PresenceWindow};
/// use btgs_des::{SimDuration, SimTime};
///
/// let bridge = AmAddr::new(7).unwrap();
/// let window = PresenceWindow::new(
///     SimDuration::from_millis(20),
///     SimDuration::ZERO,
///     SimDuration::from_millis(10),
/// ).unwrap();
/// let mut mask = PresenceMask::new();
/// mask.set(bridge, window).unwrap();
/// assert!(mask.is_present(bridge, SimTime::ZERO));
/// assert!(!mask.is_present(bridge, SimTime::from_millis(12)));
/// // Full-time slaves are always present.
/// assert!(mask.is_present(AmAddr::new(1).unwrap(), SimTime::from_millis(12)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PresenceMask {
    windows: [Option<PresenceWindow>; AmAddr::MAX_SLAVES],
}

impl PresenceMask {
    /// The trivial mask: every slave always present.
    pub const ALWAYS: PresenceMask = PresenceMask {
        windows: [None; AmAddr::MAX_SLAVES],
    };

    /// Creates the trivial (all-present) mask.
    pub fn new() -> PresenceMask {
        PresenceMask::ALWAYS
    }

    /// Registers the presence window of a part-time slave.
    ///
    /// # Errors
    ///
    /// Returns an error if the slave already has a window (one device
    /// cannot follow two rendezvous schedules in the same piconet).
    pub fn set(&mut self, slave: AmAddr, window: PresenceWindow) -> Result<(), PiconetError> {
        let slot = &mut self.windows[slave.index()];
        if slot.is_some() {
            return Err(PiconetError(format!(
                "slave {slave} already has a presence window"
            )));
        }
        *slot = Some(window);
        Ok(())
    }

    /// The presence window of a slave, or `None` for full-time slaves.
    pub fn window_of(&self, slave: AmAddr) -> Option<&PresenceWindow> {
        self.windows[slave.index()].as_ref()
    }

    /// `true` if no slave has a presence window (the single-piconet case).
    pub fn is_trivial(&self) -> bool {
        self.windows.iter().all(|w| w.is_none())
    }

    /// `true` if `slave` is reachable at instant `t`.
    #[inline]
    pub fn is_present(&self, slave: AmAddr, t: SimTime) -> bool {
        match &self.windows[slave.index()] {
            None => true,
            Some(w) => w.contains(t),
        }
    }

    /// The earliest instant at or after `t` at which `slave` is reachable
    /// (`t` itself for full-time slaves).
    #[inline]
    pub fn next_present(&self, slave: AmAddr, t: SimTime) -> SimTime {
        match &self.windows[slave.index()] {
            None => t,
            Some(w) => w.next_present(t),
        }
    }

    /// Whole slots for which `slave` stays reachable from `t` on
    /// (`u64::MAX` for full-time slaves).
    #[inline]
    pub fn remaining_slots(&self, slave: AmAddr, t: SimTime) -> u64 {
        match &self.windows[slave.index()] {
            None => u64::MAX,
            Some(w) => w.remaining(t).div_duration(SLOT),
        }
    }

    /// `true` if a transaction of duration `need` starting at `t` finishes
    /// at or before `slave`'s departure (always for full-time slaves). An
    /// exchange ending exactly *on* the boundary fits — the window is
    /// end-exclusive. For windows shorter than `need` this degrades to
    /// bare presence, in lock-step with [`next_fitting`]
    /// (see [`PresenceWindow::fits`]): the exchange is truncated by the
    /// departure cap, but a wait-then-recheck caller never spins.
    ///
    /// [`next_fitting`]: PresenceMask::next_fitting
    #[inline]
    pub fn fits(&self, slave: AmAddr, t: SimTime, need: SimDuration) -> bool {
        match &self.windows[slave.index()] {
            None => true,
            Some(w) => w.fits(t, need),
        }
    }

    /// The earliest instant at or after `t` at which a transaction of
    /// duration `need` with `slave` can start and still finish before the
    /// departure boundary (`t` itself for full-time slaves); see
    /// [`PresenceWindow::next_fitting`] for windows shorter than `need`.
    #[inline]
    pub fn next_fitting(&self, slave: AmAddr, t: SimTime, need: SimDuration) -> SimTime {
        match &self.windows[slave.index()] {
            None => t,
            Some(w) => w.next_fitting(t, need),
        }
    }
}

/// An SCO link bound to a slave, optionally fed by a voice flow.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoBinding {
    /// The slave holding the SCO link.
    pub slave: AmAddr,
    /// Link parameters (HV type and offset).
    pub link: ScoLink,
    /// Id of the voice flow served by this link, if its traffic is
    /// simulated (a source must then be registered for this id). SCO slots
    /// are reserved and consumed whether or not a voice flow is attached.
    pub voice_flow: Option<FlowId>,
}

/// Static description of a piconet scenario.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{FlowSpec, PiconetConfig};
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel, PacketType};
/// use btgs_traffic::FlowId;
///
/// let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
///     .with_flow(FlowSpec::new(
///         FlowId(1),
///         AmAddr::new(1).unwrap(),
///         Direction::SlaveToMaster,
///         LogicalChannel::GuaranteedService,
///     ));
/// assert!(config.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct PiconetConfig {
    /// ACL packet types any flow may use (unless overridden per flow).
    pub allowed_types: Vec<PacketType>,
    /// The flows carried by the piconet.
    pub flows: Vec<FlowSpec>,
    /// SCO links, if any.
    pub sco: Vec<ScoBinding>,
    /// Segmentation policy for all queues.
    pub sar: SarPolicy,
    /// Warm-up period excluded from all measurements.
    pub warmup: SimDuration,
    /// Per-slave presence schedule; trivial (all-present) outside a
    /// scatternet.
    pub presence: PresenceMask,
    /// Arrival batching factor: how many future source arrivals the engine
    /// may materialize eagerly per scheduled `Arrival` event (1 = one
    /// event per packet, the classic behaviour). Batching applies to
    /// uplink ACL and SCO voice sources only — their packets are invisible
    /// to the master until polled, so pre-queueing them is unobservable as
    /// long as wake-up instants are clamped to the earliest batched
    /// arrival (which the simulator does).
    pub arrival_batch: u32,
}

impl PiconetConfig {
    /// Creates a configuration with the given piconet-wide allowed ACL data
    /// packet types and no flows.
    pub fn new(allowed_types: Vec<PacketType>) -> PiconetConfig {
        PiconetConfig {
            allowed_types,
            flows: Vec::new(),
            sco: Vec::new(),
            sar: SarPolicy::MaxFirst,
            warmup: SimDuration::ZERO,
            presence: PresenceMask::ALWAYS,
            arrival_batch: 1,
        }
    }

    /// Adds a flow (builder style).
    #[must_use]
    pub fn with_flow(mut self, flow: FlowSpec) -> PiconetConfig {
        self.flows.push(flow);
        self
    }

    /// Adds an SCO binding (builder style).
    #[must_use]
    pub fn with_sco(mut self, sco: ScoBinding) -> PiconetConfig {
        self.sco.push(sco);
        self
    }

    /// Sets the warm-up period (builder style).
    #[must_use]
    pub fn with_warmup(mut self, warmup: SimDuration) -> PiconetConfig {
        self.warmup = warmup;
        self
    }

    /// Sets the segmentation policy (builder style).
    #[must_use]
    pub fn with_sar(mut self, sar: SarPolicy) -> PiconetConfig {
        self.sar = sar;
        self
    }

    /// Sets the arrival batching factor (builder style); see the
    /// [`arrival_batch`](PiconetConfig::arrival_batch) field.
    #[must_use]
    pub fn with_arrival_batch(mut self, batch: u32) -> PiconetConfig {
        self.arrival_batch = batch;
        self
    }

    /// Marks `slave` as part-time with the given presence window (builder
    /// style).
    ///
    /// # Panics
    ///
    /// Panics if the slave already has a presence window; use
    /// [`PresenceMask::set`] directly for fallible registration.
    #[must_use]
    pub fn with_presence(mut self, slave: AmAddr, window: PresenceWindow) -> PiconetConfig {
        self.presence
            .set(slave, window)
            .expect("slave registered twice in with_presence");
        self
    }

    /// The allowed packet types of a flow (its override or the piconet-wide
    /// set).
    pub fn allowed_for<'a>(&'a self, flow: &'a FlowSpec) -> &'a [PacketType] {
        flow.allowed_types.as_deref().unwrap_or(&self.allowed_types)
    }

    /// The precomputed per-slot-cap allowed-type table of a flow (see
    /// [`AllowedByCap`]).
    pub fn allowed_by_cap_for(&self, flow: &FlowSpec) -> AllowedByCap {
        AllowedByCap::new(self.allowed_for(flow))
    }

    /// Checks the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`PiconetError`] naming the first violated rule: flow-set
    /// rules (see [`validate_flows`]), a data-bearing allowed set for every
    /// flow, at most seven slaves, non-overlapping SCO reservations, and
    /// voice-flow ids distinct from ACL flow ids.
    pub fn validate(&self) -> Result<(), PiconetError> {
        if self.arrival_batch == 0 {
            return Err(PiconetError(
                "arrival_batch must be at least 1 (1 disables batching)".into(),
            ));
        }
        validate_flows(&self.flows).map_err(PiconetError)?;
        for f in &self.flows {
            if !self.allowed_for(f).iter().any(|t| t.is_acl_data()) {
                return Err(PiconetError(format!(
                    "flow {} has no data-bearing packet type available",
                    f.id
                )));
            }
        }
        let mut slaves: Vec<AmAddr> = self.flows.iter().map(|f| f.slave).collect();
        slaves.extend(self.sco.iter().map(|s| s.slave));
        slaves.sort();
        slaves.dedup();
        if slaves.len() > AmAddr::MAX_SLAVES {
            return Err(PiconetError(format!(
                "{} slaves configured; a piconet holds at most 7",
                slaves.len()
            )));
        }
        for (i, a) in self.sco.iter().enumerate() {
            for b in &self.sco[i + 1..] {
                // Two links overlap if any reservation instant coincides;
                // with periodic grids it suffices to check over the LCM
                // window, and all HV intervals divide 12 slots.
                let horizon = btgs_des::SimTime::from_micros(625 * 12);
                let mut t = btgs_des::SimTime::ZERO;
                while t < horizon {
                    let ra = a.link.next_reservation(t);
                    if ra == b.link.next_reservation(ra) {
                        return Err(PiconetError(format!(
                            "SCO links at {} and {} collide at {}",
                            a.slave, b.slave, ra
                        )));
                    }
                    t = ra + btgs_des::SimDuration::from_micros(1250);
                }
            }
        }
        for s in &self.sco {
            if let Some(vf) = s.voice_flow {
                if self.flows.iter().any(|f| f.id == vf) {
                    return Err(PiconetError(format!(
                        "SCO voice flow id {vf} collides with an ACL flow id"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_baseband::{Direction, LogicalChannel};

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    fn base() -> PiconetConfig {
        PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
    }

    #[test]
    fn empty_config_is_valid() {
        assert!(base().validate().is_ok());
    }

    #[test]
    fn allowed_for_override() {
        let f1 = FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        );
        let f2 = FlowSpec::new(
            FlowId(2),
            s(2),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        )
        .with_allowed_types(vec![PacketType::Dh1]);
        let cfg = base().with_flow(f1.clone()).with_flow(f2.clone());
        assert_eq!(cfg.allowed_for(&f1), &[PacketType::Dh1, PacketType::Dh3]);
        assert_eq!(cfg.allowed_for(&f2), &[PacketType::Dh1]);
    }

    #[test]
    fn rejects_flow_without_data_types() {
        let f = FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        )
        .with_allowed_types(vec![PacketType::Poll]);
        let err = base().with_flow(f).validate().unwrap_err();
        assert!(err.to_string().contains("no data-bearing"));
    }

    #[test]
    fn rejects_too_many_slaves() {
        // 7 ACL slaves plus an SCO link on an eighth address is impossible
        // anyway (AmAddr caps at 7), so overfill via flows on all 7 plus…
        // seven is fine:
        let mut cfg = base();
        for n in 1..=7u8 {
            cfg = cfg.with_flow(FlowSpec::new(
                FlowId(n as u32),
                s(n),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ));
        }
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn sco_collision_detected() {
        let cfg = base()
            .with_sco(ScoBinding {
                slave: s(1),
                link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
                voice_flow: None,
            })
            .with_sco(ScoBinding {
                slave: s(2),
                link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
                voice_flow: None,
            });
        assert!(cfg.validate().is_err());
        // Distinct offsets coexist.
        let ok = base()
            .with_sco(ScoBinding {
                slave: s(1),
                link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
                voice_flow: None,
            })
            .with_sco(ScoBinding {
                slave: s(2),
                link: ScoLink::new(PacketType::Hv3, 1).unwrap(),
                voice_flow: None,
            });
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn voice_flow_id_collision_detected() {
        let cfg = base()
            .with_flow(FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ))
            .with_sco(ScoBinding {
                slave: s(2),
                link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
                voice_flow: Some(FlowId(1)),
            });
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("collides"));
    }

    #[test]
    fn sar_policy_delegates() {
        let allowed = [PacketType::Dh1, PacketType::Dh3];
        assert_eq!(
            SarPolicy::MaxFirst.next_type(20, &allowed),
            Some(PacketType::Dh1)
        );
        assert_eq!(
            SarPolicy::AlwaysLargest.next_type(20, &allowed),
            Some(PacketType::Dh3)
        );
        assert_eq!(SarPolicy::default(), SarPolicy::MaxFirst);
    }
}
