//! Slot accounting: where did the 1600 slots per second go?
//!
//! The paper's efficiency argument is entirely about slots: the variable
//! interval poller "saves an amount of bandwidth that can be used for
//! retransmissions … and/or for transmission of BE traffic". The ledger
//! classifies every slot of a run so the savings are directly observable.

use btgs_baseband::LogicalChannel;
use btgs_des::SimDuration;
use btgs_metrics::Table;

/// Slot usage classification over a measurement window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotLedger {
    /// Slots carrying Guaranteed Service data segments (first transmission).
    pub gs_data: u64,
    /// Slots spent on GS control packets (POLL/NULL) and silent response
    /// windows — the poll overhead the variable interval poller minimises.
    pub gs_overhead: u64,
    /// Slots spent retransmitting GS data after radio losses.
    pub gs_retx: u64,
    /// Slots carrying best-effort data segments (first transmission).
    pub be_data: u64,
    /// Slots spent on BE control packets and silent response windows.
    pub be_overhead: u64,
    /// Slots spent retransmitting BE data.
    pub be_retx: u64,
    /// Slots consumed by SCO reservations.
    pub sco: u64,
}

/// Per-channel poll counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PollCounters {
    /// Polls that moved at least one data segment.
    pub successful: u64,
    /// Polls that moved none (pure POLL/NULL exchanges).
    pub unsuccessful: u64,
}

impl PollCounters {
    /// Total polls executed.
    pub fn total(&self) -> u64 {
        self.successful + self.unsuccessful
    }

    /// Fraction of polls that were unsuccessful (0 if no polls).
    pub fn waste_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unsuccessful as f64 / self.total() as f64
        }
    }

    /// Records one poll outcome.
    pub fn record(&mut self, successful: bool) {
        if successful {
            self.successful += 1;
        } else {
            self.unsuccessful += 1;
        }
    }
}

impl SlotLedger {
    /// Total slots used (excludes idle).
    pub fn used(&self) -> u64 {
        self.gs_data
            + self.gs_overhead
            + self.gs_retx
            + self.be_data
            + self.be_overhead
            + self.be_retx
            + self.sco
    }

    /// Slots consumed by the GS schedule in total.
    pub fn gs_total(&self) -> u64 {
        self.gs_data + self.gs_overhead + self.gs_retx
    }

    /// Slots consumed by best-effort service in total.
    pub fn be_total(&self) -> u64 {
        self.be_data + self.be_overhead + self.be_retx
    }

    /// Idle slots within a window of `window` duration.
    ///
    /// # Panics
    ///
    /// Panics if the ledger accounts more slots than the window holds.
    pub fn idle_in(&self, window: SimDuration) -> u64 {
        let total = window.as_nanos() / btgs_baseband::SLOT.as_nanos();
        let used = self.used();
        assert!(
            used <= total,
            "ledger accounts {used} slots but the window holds only {total}"
        );
        total - used
    }

    /// Adds `slots` of the given kind for a data transmission.
    pub fn add_data(&mut self, channel: LogicalChannel, slots: u64, retransmission: bool) {
        match (channel, retransmission) {
            (LogicalChannel::GuaranteedService, false) => self.gs_data += slots,
            (LogicalChannel::GuaranteedService, true) => self.gs_retx += slots,
            (LogicalChannel::BestEffort, false) => self.be_data += slots,
            (LogicalChannel::BestEffort, true) => self.be_retx += slots,
        }
    }

    /// Adds `slots` of poll overhead (POLL/NULL/silence).
    pub fn add_overhead(&mut self, channel: LogicalChannel, slots: u64) {
        match channel {
            LogicalChannel::GuaranteedService => self.gs_overhead += slots,
            LogicalChannel::BestEffort => self.be_overhead += slots,
        }
    }

    /// Renders the ledger as a table over the given window.
    pub fn to_table(&self, window: SimDuration) -> Table {
        let total = (window.as_nanos() / btgs_baseband::SLOT.as_nanos()).max(1);
        let mut t = Table::new(vec!["category", "slots", "share"]);
        let mut row = |name: &str, v: u64| {
            t.row(vec![
                name.to_owned(),
                v.to_string(),
                format!("{:.2}%", v as f64 / total as f64 * 100.0),
            ]);
        };
        row("GS data", self.gs_data);
        row("GS overhead", self.gs_overhead);
        row("GS retransmissions", self.gs_retx);
        row("BE data", self.be_data);
        row("BE overhead", self.be_overhead);
        row("BE retransmissions", self.be_retx);
        row("SCO", self.sco);
        row("idle", self.idle_in(window));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_routes_by_channel_and_kind() {
        let mut l = SlotLedger::default();
        l.add_data(LogicalChannel::GuaranteedService, 3, false);
        l.add_data(LogicalChannel::GuaranteedService, 3, true);
        l.add_data(LogicalChannel::BestEffort, 6, false);
        l.add_overhead(LogicalChannel::GuaranteedService, 2);
        l.add_overhead(LogicalChannel::BestEffort, 1);
        l.sco += 2;
        assert_eq!(l.gs_data, 3);
        assert_eq!(l.gs_retx, 3);
        assert_eq!(l.be_data, 6);
        assert_eq!(l.gs_overhead, 2);
        assert_eq!(l.be_overhead, 1);
        assert_eq!(l.gs_total(), 8);
        assert_eq!(l.be_total(), 7);
        assert_eq!(l.used(), 17);
    }

    #[test]
    fn idle_computation() {
        let l = SlotLedger {
            gs_data: 100,
            ..SlotLedger::default()
        };
        // 1 second = 1600 slots.
        assert_eq!(l.idle_in(SimDuration::from_secs(1)), 1500);
    }

    #[test]
    #[should_panic(expected = "window holds only")]
    fn over_accounting_panics() {
        let l = SlotLedger {
            gs_data: 2000,
            ..SlotLedger::default()
        };
        let _ = l.idle_in(SimDuration::from_secs(1));
    }

    #[test]
    fn poll_counters() {
        let mut c = PollCounters::default();
        assert_eq!(c.waste_ratio(), 0.0);
        c.record(true);
        c.record(true);
        c.record(false);
        assert_eq!(c.total(), 3);
        assert_eq!(c.successful, 2);
        assert_eq!(c.unsuccessful, 1);
        assert!((c.waste_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_rows() {
        let l = SlotLedger::default();
        let t = l.to_table(SimDuration::from_secs(1));
        let s = t.render();
        for name in ["GS data", "BE data", "SCO", "idle"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
