//! The runtime causality sanitizer and divergence bisector of the island
//! engine.
//!
//! The conservative PDES engine in [`scatternet`](crate::ScatternetSim)
//! rests on a lookahead argument: staged cross-island relays are injected
//! exactly when the global round clock reaches their handoff instant, at
//! which point the target island has provably processed every own event at
//! that instant. Until this module, that argument was only validated
//! end-to-end — a diverging report said *something* broke, with no way to
//! localize the first bad event. This module adds:
//!
//! * a **sanitizer** ([`ScatternetSim::run_sanitized`]): per-phase runtime
//!   checks of the causality invariants —
//!   - *lookahead safety*: every injected relay's timestamp is at or after
//!     the target island's local clock;
//!   - *widening boundary*: adaptive widening never stretches a phase
//!     across a boundary that a staged relay lands on (every relay
//!     collected at boundary `b` has handoff `>= b`);
//!   - *injection order*: the staged-relay `(handoff, source, sequence)`
//!     keys are strictly increasing across the whole run;
//!   - *wheel FIFO*: relays scheduled into an island's wheel fire in
//!     scheduling order within each timestamp, and the island's event
//!     times are monotone;
//!   - *conservation*: every relay staged is injected exactly once (per
//!     target flow: staged = injected + still-pooled at the horizon).
//!
//!   The instrumentation rides on a const-generic seam in the engine: the
//!   default build monomorphises the uninstrumented handler, so plain
//!   [`run`](crate::ScatternetSim::run) compiles the sanitizer out — the
//!   zero-allocation gate and the steady-state benches see the exact
//!   pre-sanitizer code. A sanitized run halts at its first finding (the
//!   partial report is withheld) so a broken engine cannot cascade into
//!   wheel panics before the violation is reported; a clean sanitized run
//!   returns a report byte-identical to the unsanitized one.
//!
//! * a **divergence bisector** ([`bisect_runs`]): given two engine
//!   configurations that must be byte-identical (threads 1 vs N, widening
//!   on/off, shuffled claim order — or a seeded [`EngineMutation`]), run
//!   both with per-island rolling event hashes, binary-search each island's
//!   hash sequence to its first diverging event, pick the earliest across
//!   islands, then re-run with a bounded capture window around that index
//!   and print a minimal aligned trace (island, time, event kind, hash
//!   prefix). "Reports differ" becomes an actionable counterexample.
//!
//! * a **seeded-mutation corpus** ([`EngineMutation`]): deliberately broken
//!   engine variants (off-by-one boundary walk, relay injected behind the
//!   clock, unsorted staging drain, widening past a hot boundary, dropped
//!   relay, duplicated relay) used by `crates/piconet/tests/
//!   sanitizer_mutations.rs` to prove every mutation is caught by the
//!   sanitizer *and* localized by the bisector, while the clean engine
//!   reports zero findings.

use crate::config::PiconetError;
use crate::telemetry::IslandObs;
use crate::ScatternetSim;
use btgs_des::SimTime;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which causality invariant a [`SanitizerFinding`] violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SanitizerCheck {
    /// An injected relay's timestamp was behind the target island's clock.
    LookaheadSafety,
    /// A phase stretched across a boundary that a staged relay lands on.
    WideningBoundary,
    /// The staged-relay total order was violated at injection.
    InjectionOrder,
    /// Relays fired out of scheduling order within a timestamp, or an
    /// island's event times went backwards.
    WheelFifo,
    /// A staged relay was dropped, duplicated, or otherwise unaccounted
    /// for across islands.
    Conservation,
}

impl fmt::Display for SanitizerCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SanitizerCheck::LookaheadSafety => "lookahead-safety",
            SanitizerCheck::WideningBoundary => "widening-boundary",
            SanitizerCheck::InjectionOrder => "injection-order",
            SanitizerCheck::WheelFifo => "wheel-fifo",
            SanitizerCheck::Conservation => "conservation",
        })
    }
}

/// One causality violation found by the sanitizer.
#[derive(Clone, Debug)]
pub struct SanitizerFinding {
    /// The violated invariant.
    pub check: SanitizerCheck,
    /// The island the violation surfaced on (the target island for
    /// injection checks, `u16::MAX` for run-global findings).
    pub island: u16,
    /// Simulated instant of the violation ([`SimTime::MAX`] for end-of-run
    /// reconciliation findings).
    pub at: SimTime,
    /// Human-readable description with the violating values.
    pub message: String,
}

impl fmt::Display for SanitizerFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.island == u16::MAX {
            write!(f, "[{}] {}", self.check, self.message)
        } else {
            write!(
                f,
                "[{}] island {} at {}: {}",
                self.check, self.island, self.at, self.message
            )
        }
    }
}

/// The outcome of the sanitizer side of one sanitized run.
#[derive(Clone, Debug, Default)]
pub struct SanitizerReport {
    /// Every violation found, coordinator findings first, then per-island
    /// findings in piconet order. Empty for a clean engine.
    pub findings: Vec<SanitizerFinding>,
    /// Island events that went through the instrumented handler.
    pub events_checked: u64,
    /// Cross-island relays tracked through stage → pool → injection.
    pub relays_tracked: u64,
    /// Relays still pooled at run end — handoffs past the horizon, which
    /// can never fire. A clean run conserves staged relays exactly:
    /// `relays_staged == relays_injected + relays_leftover`.
    pub relays_leftover: u64,
}

impl SanitizerReport {
    /// `true` when no invariant was violated.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// A sanitized run: the report (withheld when the sanitizer halted the
/// engine at a finding) plus the sanitizer's verdict.
#[derive(Debug)]
pub struct SanitizedRun {
    /// The scatternet report — `None` when the run halted at a finding.
    /// A clean sanitized run's report is byte-identical to the
    /// unsanitized run of the same configuration.
    pub report: Option<crate::ScatternetReport>,
    /// The sanitizer's findings and counters.
    pub sanitizer: SanitizerReport,
}

/// Deliberately broken engine variants for the sanitizer's self-test
/// corpus. Test-only: not part of the supported API surface.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMutation {
    /// The boundary walk skips every needed calendar start and takes the
    /// next one instead (pending-injection caps still honored).
    BoundaryOffByOne,
    /// The first due relay is withheld a round and injected one boundary
    /// late — behind the target island's clock.
    RelayBehindClock,
    /// The staging-drain sort breaks its sequence tie-break, so
    /// same-instant same-source relays inject in reverse staging order.
    UnsortedStagingDrain,
    /// Adaptive widening treats every island as cold, stretching phases
    /// across boundaries that hot islands' relays land on.
    WideningPastHotBoundary,
    /// One collected relay is silently dropped from the coordinator pool.
    DroppedRelay,
    /// One collected relay is duplicated in the coordinator pool.
    DuplicatedRelay,
}

impl EngineMutation {
    /// Every corpus mutation, in a fixed order.
    #[doc(hidden)]
    pub const ALL: [EngineMutation; 6] = [
        EngineMutation::BoundaryOffByOne,
        EngineMutation::RelayBehindClock,
        EngineMutation::UnsortedStagingDrain,
        EngineMutation::WideningPastHotBoundary,
        EngineMutation::DroppedRelay,
        EngineMutation::DuplicatedRelay,
    ];

    /// Stable corpus name (used by test output and the analyze CLI).
    #[doc(hidden)]
    pub fn name(&self) -> &'static str {
        match self {
            EngineMutation::BoundaryOffByOne => "boundary-off-by-one",
            EngineMutation::RelayBehindClock => "relay-behind-clock",
            EngineMutation::UnsortedStagingDrain => "unsorted-staging-drain",
            EngineMutation::WideningPastHotBoundary => "widening-past-hot-boundary",
            EngineMutation::DroppedRelay => "dropped-relay",
            EngineMutation::DuplicatedRelay => "duplicated-relay",
        }
    }

    /// Parses a corpus name back into the mutation.
    #[doc(hidden)]
    pub fn from_name(name: &str) -> Option<EngineMutation> {
        EngineMutation::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// Event kinds as they appear in traces (mirrors the island event enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A source packet arrival.
    Arrival,
    /// A master wake/re-evaluation.
    Wake,
    /// An ACL exchange completion.
    ExchangeDone,
    /// An SCO reservation completion.
    ScoDone,
    /// A relayed packet landing in a flow queue.
    Relay,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TraceKind::Arrival => "arrival",
            TraceKind::Wake => "wake",
            TraceKind::ExchangeDone => "exchange",
            TraceKind::ScoDone => "sco",
            TraceKind::Relay => "relay",
        })
    }
}

/// One traced island event, captured inside a bisection window.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// 0-based ordinal of the event within its island's run.
    pub index: u64,
    /// The event's simulated instant.
    pub at: SimTime,
    /// The event kind.
    pub kind: TraceKind,
    /// Kind-specific identity (source index, SCO index, or flow index).
    pub a: u64,
    /// Kind-specific payload (packet sequence number, or instant nanos).
    pub b: u64,
    /// The island's rolling event hash *after* this event.
    pub hash: u64,
}

/// What a traced run records.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceConfig {
    /// Record the full per-island rolling-hash and event-time sequences
    /// (the bisector's first pass).
    pub hashes: bool,
    /// Capture full event descriptors inside one island's index window
    /// (the bisector's second pass — the bounded "ring buffer" around a
    /// suspected divergence).
    pub window: Option<TraceWindow>,
}

impl TraceConfig {
    /// Hash-only capture across every island.
    pub fn hashes() -> TraceConfig {
        TraceConfig {
            hashes: true,
            window: None,
        }
    }

    /// Descriptor capture for `len` events of `island` starting at event
    /// ordinal `start`.
    pub fn window(island: u16, start: u64, len: u64) -> TraceConfig {
        TraceConfig {
            hashes: false,
            window: Some(TraceWindow { island, start, len }),
        }
    }
}

/// A bounded descriptor-capture window (see [`TraceConfig::window`]).
#[derive(Clone, Copy, Debug)]
pub struct TraceWindow {
    /// The island to capture.
    pub island: u16,
    /// First captured event ordinal.
    pub start: u64,
    /// Number of events to capture.
    pub len: u64,
}

/// The trace of one island across one run.
#[derive(Clone, Debug, Default)]
pub struct IslandTrace {
    /// Rolling event hash after each event (empty unless
    /// [`TraceConfig::hashes`]).
    pub hashes: Vec<u64>,
    /// Event time (nanos) of each event (parallel to `hashes`).
    pub times: Vec<u64>,
    /// Captured descriptors (empty unless a [`TraceWindow`] selected this
    /// island).
    pub window: Vec<TraceEvent>,
    /// Total events the island processed (valid in every mode).
    pub events: u64,
}

/// The traces of every island across one run, in piconet order.
#[derive(Clone, Debug, Default)]
pub struct RunTrace {
    /// Per-island traces.
    pub islands: Vec<IslandTrace>,
}

/// FNV-1a-style fold of one word into a rolling hash.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// The rolling hash after an event `(t, kind, a, b)` on top of `h`.
#[inline]
pub(crate) fn event_hash(h: u64, t_nanos: u64, kind: TraceKind, a: u64, b: u64) -> u64 {
    mix(mix(mix(mix(h, t_nanos), kind as u64), a), b)
}

/// Per-island instrumentation state, boxed behind
/// `IslandState::probe` — `None` (one machine word, no allocation) in
/// default runs; the instrumented handler is a separate monomorphisation,
/// so the default engine never even tests the option.
pub(crate) struct IslandProbe {
    pic: u16,
    sanitize: bool,
    tripped: Arc<AtomicBool>,
    findings: Vec<SanitizerFinding>,
    /// Monotone-clock watermark: the last handled event's instant.
    last_event: Option<SimTime>,
    /// Wheel-FIFO expectations: event-time nanos → FIFO of
    /// `(flow_idx, packet seq)` in scheduling order.
    expect: BTreeMap<u64, VecDeque<(u32, u64)>>,
    /// Cross-island relays this island staged, total and per target flow
    /// (`(target piconet, flow_idx)`), counted at staging time.
    staged_total: u64,
    staged_by_flow: BTreeMap<(u16, u32), u64>,
    events: u64,
    trace_hashes: bool,
    trace_window: Option<(u64, u64)>,
    hash: u64,
    hashes: Vec<u64>,
    times: Vec<u64>,
    window: Vec<TraceEvent>,
    /// Telemetry/trace capture for this island — `None` unless the run
    /// was started through `run_observed`.
    obs: Option<IslandObs>,
}

impl IslandProbe {
    pub(crate) fn new(
        pic: u16,
        tripped: Arc<AtomicBool>,
        sanitize: bool,
        trace: Option<&TraceConfig>,
        obs: Option<IslandObs>,
    ) -> IslandProbe {
        let trace_window = trace
            .and_then(|c| c.window)
            .filter(|w| w.island == pic)
            .map(|w| (w.start, w.len));
        IslandProbe {
            pic,
            sanitize,
            tripped,
            findings: Vec::new(),
            last_event: None,
            expect: BTreeMap::new(),
            staged_total: 0,
            staged_by_flow: BTreeMap::new(),
            events: 0,
            trace_hashes: trace.is_some_and(|c| c.hashes),
            trace_window,
            hash: 0,
            hashes: Vec::new(),
            times: Vec::new(),
            window: Vec::with_capacity(trace_window.map_or(0, |(_, len)| len as usize)),
            obs,
        }
    }

    fn report(&mut self, check: SanitizerCheck, at: SimTime, message: String) {
        self.findings.push(SanitizerFinding {
            check,
            island: self.pic,
            at,
            message,
        });
        // ord: Relaxed — a best-effort halt flag the coordinator polls
        // between rounds; the findings themselves are read only after the
        // engine's locks/joins, which order them.
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// Called by the instrumented handler for every island event, with
    /// the scheduler clock already set to the event's instant.
    pub(crate) fn on_event(&mut self, t: SimTime, kind: TraceKind, a: u64, b: u64) {
        self.events += 1;
        let t_nanos = crate::scatternet::nanos_of(t);
        if let Some(obs) = self.obs.as_mut() {
            // analyze: allow(obs-seam): delegated from island_handle, itself
            // behind the `I` const-generic seam.
            obs.on_event(t, kind, a, b);
        }
        if self.sanitize {
            if let Some(last) = self.last_event {
                if t < last {
                    self.report(
                        SanitizerCheck::WheelFifo,
                        t,
                        format!("event time went backwards: {t} after {last}"),
                    );
                }
            }
            self.last_event = Some(t);
            if kind == TraceKind::Relay {
                let expected = self.expect.get_mut(&t_nanos).and_then(|q| q.pop_front());
                match expected {
                    Some((flow_idx, seq)) if u64::from(flow_idx) == a && seq == b => {}
                    Some((flow_idx, seq)) => self.report(
                        SanitizerCheck::WheelFifo,
                        t,
                        format!(
                            "relay fired out of scheduling order within its timestamp: \
                             got flow {a} seq {b}, expected flow {flow_idx} seq {seq}"
                        ),
                    ),
                    None => self.report(
                        SanitizerCheck::WheelFifo,
                        t,
                        format!("relay for flow {a} seq {b} fired with no matching schedule"),
                    ),
                }
                if self.expect.get(&t_nanos).is_some_and(VecDeque::is_empty) {
                    self.expect.remove(&t_nanos);
                }
            }
        }
        if self.trace_hashes || self.trace_window.is_some() {
            self.hash = event_hash(self.hash, t_nanos, kind, a, b);
            if self.trace_hashes {
                self.hashes.push(self.hash);
                self.times.push(t_nanos);
            }
            if let Some((start, len)) = self.trace_window {
                let index = self.events - 1;
                if index >= start && index < start + len {
                    self.window.push(TraceEvent {
                        index,
                        at: t,
                        kind,
                        a,
                        b,
                        hash: self.hash,
                    });
                }
            }
        }
    }

    /// Records a relay scheduled into this island's own wheel (master
    /// relays and coordinator injections): the wheel-FIFO expectation.
    pub(crate) fn on_scheduled_relay(&mut self, at: SimTime, flow_idx: u32, seq: u64) {
        if self.sanitize {
            self.expect
                .entry(crate::scatternet::nanos_of(at))
                .or_default()
                .push_back((flow_idx, seq));
        }
    }

    /// Called by the instrumented handler after each event's handler
    /// returns — closes the per-event cost meter, if one is attached.
    pub(crate) fn after_event(&mut self) {
        if let Some(obs) = self.obs.as_mut() {
            // analyze: allow(obs-seam): delegated from island_handle, itself
            // behind the `I` const-generic seam.
            obs.after_event();
        }
    }

    /// Records a cross-island relay this island staged for the
    /// coordinator.
    pub(crate) fn on_staged(&mut self, target_pic: u16, flow_idx: u32, at: SimTime, seq: u64) {
        if self.sanitize {
            self.staged_total += 1;
            *self
                .staged_by_flow
                .entry((target_pic, flow_idx))
                .or_default() += 1;
        }
        if let Some(obs) = self.obs.as_mut() {
            // analyze: allow(obs-seam): delegated from route_captures, itself
            // behind the `I` const-generic seam.
            obs.on_staged(target_pic, flow_idx, at, seq);
        }
    }

    /// Called once per coordinator claim after this island ran to the
    /// phase boundary `b`, with the island wheel's live/near occupancy.
    pub(crate) fn on_island_ran(&mut self, b: SimTime, live: u64, near: u64) {
        if let Some(obs) = self.obs.as_mut() {
            // analyze: allow(obs-seam): delegated from island_status_after_run,
            // itself behind the `I` const-generic seam.
            obs.on_island_ran(b, live, near);
        }
    }

    pub(crate) fn take_obs(&mut self) -> Option<IslandObs> {
        self.obs.take()
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    pub(crate) fn staged_total(&self) -> u64 {
        self.staged_total
    }

    pub(crate) fn staged_by_flow(&self) -> &BTreeMap<(u16, u32), u64> {
        &self.staged_by_flow
    }

    pub(crate) fn take_findings(&mut self) -> Vec<SanitizerFinding> {
        std::mem::take(&mut self.findings)
    }

    pub(crate) fn take_trace(&mut self) -> IslandTrace {
        IslandTrace {
            hashes: std::mem::take(&mut self.hashes),
            times: std::mem::take(&mut self.times),
            window: std::mem::take(&mut self.window),
            events: self.events,
        }
    }
}

/// Coordinator-side sanitizer state: the checks that see the staged-relay
/// pool and the injections (the per-island checks live in
/// [`IslandProbe`]).
pub(crate) struct EngineSanitizer {
    tripped: Arc<AtomicBool>,
    findings: Vec<SanitizerFinding>,
    /// The last injected `(handoff, source, seq)` key — the global total
    /// order.
    last_key: Option<(SimTime, u16, u64)>,
    /// `(source, seq)` of every injection, for duplicate detection.
    injected_keys: BTreeSet<(u16, u64)>,
    received_total: u64,
    injected_total: u64,
    injected_by_flow: BTreeMap<(u16, u32), u64>,
    leftover_by_flow: BTreeMap<(u16, u32), u64>,
}

impl EngineSanitizer {
    pub(crate) fn new(tripped: Arc<AtomicBool>) -> EngineSanitizer {
        EngineSanitizer {
            tripped,
            findings: Vec::new(),
            last_key: None,
            injected_keys: BTreeSet::new(),
            received_total: 0,
            injected_total: 0,
            injected_by_flow: BTreeMap::new(),
            leftover_by_flow: BTreeMap::new(),
        }
    }

    pub(crate) fn tripped(&self) -> bool {
        // ord: Relaxed — best-effort halt poll; see IslandProbe::report.
        self.tripped.load(Ordering::Relaxed)
    }

    fn report(&mut self, check: SanitizerCheck, island: u16, at: SimTime, message: String) {
        self.findings.push(SanitizerFinding {
            check,
            island,
            at,
            message,
        });
        // ord: Relaxed — coordinator-local flag raise; see
        // IslandProbe::report.
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// Checks one staged relay drained from island `source` at phase
    /// boundary `b`: a handoff before `b` means the phase stretched across
    /// a boundary this relay lands on.
    pub(crate) fn on_collected(&mut self, b: SimTime, source: u16, at: SimTime) {
        self.received_total += 1;
        if at < b {
            self.report(
                SanitizerCheck::WideningBoundary,
                source,
                at,
                format!(
                    "phase ran to {b} across a boundary a staged relay lands on \
                     (handoff {at} < phase end)"
                ),
            );
        }
    }

    /// Checks one pooled relay about to be injected. Returns `false` when
    /// the injection would violate lookahead safety (the caller withholds
    /// the schedule; the run is halting at this finding anyway).
    pub(crate) fn check_injection(
        &mut self,
        key: (SimTime, u16, u64),
        target: (u16, u32),
        target_now: SimTime,
    ) -> bool {
        let (at, source, seq) = key;
        if let Some(last) = self.last_key {
            if key <= last {
                self.report(
                    SanitizerCheck::InjectionOrder,
                    target.0,
                    at,
                    format!(
                        "injection key (at {at}, source {source}, seq {seq}) is not \
                         strictly after (at {}, source {}, seq {})",
                        last.0, last.1, last.2
                    ),
                );
            }
        }
        self.last_key = Some(key);
        if !self.injected_keys.insert((source, seq)) {
            self.report(
                SanitizerCheck::Conservation,
                target.0,
                at,
                format!("relay (source {source}, seq {seq}) injected twice"),
            );
        }
        self.injected_total += 1;
        *self.injected_by_flow.entry(target).or_default() += 1;
        if at < target_now {
            self.report(
                SanitizerCheck::LookaheadSafety,
                target.0,
                at,
                format!("relay handoff {at} is behind the target island's clock {target_now}"),
            );
            return false;
        }
        true
    }

    /// Records a relay still pooled (or withheld by a mutation) when the
    /// run ended — legitimate for handoffs past the horizon.
    pub(crate) fn on_leftover(&mut self, target: (u16, u32)) {
        *self.leftover_by_flow.entry(target).or_default() += 1;
    }

    /// End-of-run conservation reconciliation against every island's
    /// staging counts.
    pub(crate) fn finish(&mut self, probes: &[IslandProbe]) {
        let staged_total: u64 = probes.iter().map(IslandProbe::staged_total).sum();
        let mut staged_by_flow: BTreeMap<(u16, u32), u64> = BTreeMap::new();
        for p in probes {
            for (&flow, &n) in p.staged_by_flow() {
                *staged_by_flow.entry(flow).or_default() += n;
            }
        }
        if staged_total != self.received_total {
            self.report(
                SanitizerCheck::Conservation,
                u16::MAX,
                SimTime::MAX,
                format!(
                    "islands staged {staged_total} relays but the coordinator pool \
                     received {}",
                    self.received_total
                ),
            );
        }
        let flows: BTreeSet<(u16, u32)> = staged_by_flow
            .keys()
            .chain(self.injected_by_flow.keys())
            .chain(self.leftover_by_flow.keys())
            .copied()
            .collect();
        for flow in flows {
            let staged = staged_by_flow.get(&flow).copied().unwrap_or(0);
            let injected = self.injected_by_flow.get(&flow).copied().unwrap_or(0);
            let leftover = self.leftover_by_flow.get(&flow).copied().unwrap_or(0);
            if staged != injected + leftover {
                self.report(
                    SanitizerCheck::Conservation,
                    flow.0,
                    SimTime::MAX,
                    format!(
                        "hop flow {} of piconet {}: {staged} relays staged but \
                         {injected} injected + {leftover} still pooled",
                        flow.1, flow.0
                    ),
                );
            }
        }
    }

    /// Assembles the final report, folding in every island probe's
    /// findings (piconet order) after the coordinator's own.
    pub(crate) fn into_report(mut self, probes: &mut [IslandProbe]) -> SanitizerReport {
        let mut findings = std::mem::take(&mut self.findings);
        for p in probes.iter_mut() {
            findings.append(&mut p.take_findings());
        }
        SanitizerReport {
            findings,
            events_checked: probes.iter().map(IslandProbe::events).sum(),
            relays_tracked: self.received_total,
            relays_leftover: self.leftover_by_flow.values().sum(),
        }
    }
}

/// The first diverging event between two runs, with its aligned context
/// windows.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The island the earliest divergence occurred on.
    pub island: u16,
    /// 0-based event ordinal of the first diverging event on that island.
    pub index: u64,
    /// That event's instant in run A (`None` when A ended before it).
    pub at_a: Option<SimTime>,
    /// That event's instant in run B (`None` when B ended before it).
    pub at_b: Option<SimTime>,
    /// Captured events around the divergence in run A.
    pub window_a: Vec<TraceEvent>,
    /// Captured events around the divergence in run B.
    pub window_b: Vec<TraceEvent>,
}

/// The outcome of one bisection ([`bisect_runs`]).
#[derive(Clone, Debug)]
pub struct BisectReport {
    /// The first diverging event, or `None` when the traces are
    /// identical.
    pub divergence: Option<Divergence>,
    /// Total events traced in run A.
    pub events_a: u64,
    /// Total events traced in run B.
    pub events_b: u64,
}

impl BisectReport {
    /// Renders the minimal aligned trace around the divergence (or the
    /// no-divergence verdict) for terminals and test output.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let Some(d) = &self.divergence else {
            let _ = writeln!(
                out,
                "no divergence: {} events traced in both runs, all hashes equal",
                self.events_a
            );
            return out;
        };
        let _ = writeln!(
            out,
            "first divergence: island {} event #{} (A: {} events, B: {} events)",
            d.island, d.index, self.events_a, self.events_b
        );
        let row = |ev: Option<&TraceEvent>| -> String {
            match ev {
                Some(e) => format!(
                    "{} {:>9} a={} b={} {:08x}",
                    e.at,
                    e.kind.to_string(),
                    e.a,
                    e.b,
                    e.hash >> 32
                ),
                None => "<run ended>".into(),
            }
        };
        let lo = d
            .window_a
            .first()
            .map(|e| e.index)
            .min(d.window_b.first().map(|e| e.index))
            .unwrap_or(d.index);
        let hi = d
            .window_a
            .last()
            .map(|e| e.index)
            .max(d.window_b.last().map(|e| e.index))
            .unwrap_or(d.index);
        for idx in lo..=hi {
            let a = d.window_a.iter().find(|e| e.index == idx);
            let b = d.window_b.iter().find(|e| e.index == idx);
            let marker = if idx == d.index { ">>" } else { "  " };
            let same = match (a, b) {
                (Some(x), Some(y)) => x.hash == y.hash,
                _ => false,
            };
            let sep = if same { " == " } else { " != " };
            let _ = writeln!(out, "{marker} #{idx:<8} A: {}{sep}B: {}", row(a), row(b));
        }
        out
    }
}

/// Bisects two engine configurations that should be byte-identical down
/// to their first diverging event.
///
/// `make_a`/`make_b` build fresh, fully configured simulations (they are
/// called twice each: a hash pass over the whole run, then a bounded
/// descriptor-capture pass of `context` events around the divergence).
/// Determinism makes re-running equivalent to rewinding.
///
/// # Errors
///
/// Propagates run errors (missing sources, bad horizons) from either
/// configuration.
pub fn bisect_runs(
    make_a: &dyn Fn() -> ScatternetSim,
    make_b: &dyn Fn() -> ScatternetSim,
    horizon: SimTime,
    context: u64,
) -> Result<BisectReport, PiconetError> {
    let (_, ta) = make_a().run_traced(horizon, TraceConfig::hashes())?;
    let (_, tb) = make_b().run_traced(horizon, TraceConfig::hashes())?;
    let events_a: u64 = ta.islands.iter().map(|i| i.events).sum();
    let events_b: u64 = tb.islands.iter().map(|i| i.events).sum();

    // Per island: binary-search the rolling-hash sequences to the first
    // diverging event. A rolling hash diverges permanently once the
    // underlying events diverge, so "prefixes equal up to k" is monotone
    // in k and the search is sound.
    let mut best: Option<(u64, u16, u64)> = None; // (time nanos, island, index)
    for (pic, (ia, ib)) in ta.islands.iter().zip(&tb.islands).enumerate() {
        let common = ia.hashes.len().min(ib.hashes.len());
        let (mut lo, mut hi) = (0usize, common);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if ia.hashes[mid] == ib.hashes[mid] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let index = if lo < common {
            lo
        } else if ia.hashes.len() != ib.hashes.len() {
            common // one run has events the other never produced
        } else {
            continue;
        };
        let t = match (ia.times.get(index), ib.times.get(index)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => continue,
        };
        let key = (t, pic as u16, index as u64);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }

    let Some((_, island, index)) = best else {
        return Ok(BisectReport {
            divergence: None,
            events_a,
            events_b,
        });
    };

    // Second pass: bounded descriptor capture around the divergence.
    let start = index.saturating_sub(context / 2);
    let cfg = TraceConfig::window(island, start, context.max(1));
    let (_, wa) = make_a().run_traced(horizon, cfg)?;
    let (_, wb) = make_b().run_traced(horizon, cfg)?;
    let win = |t: &RunTrace| t.islands[island as usize].window.clone();
    let (window_a, window_b) = (win(&wa), win(&wb));
    let at_of = |w: &[TraceEvent]| w.iter().find(|e| e.index == index).map(|e| e.at);
    Ok(BisectReport {
        divergence: Some(Divergence {
            island,
            index,
            at_a: at_of(&window_a),
            at_b: at_of(&window_b),
            window_a,
            window_b,
        }),
        events_a,
        events_b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_hash_separates_fields() {
        let h = event_hash(0, 100, TraceKind::Relay, 1, 2);
        assert_ne!(h, event_hash(0, 100, TraceKind::Relay, 2, 1));
        assert_ne!(h, event_hash(0, 101, TraceKind::Relay, 1, 2));
        assert_ne!(h, event_hash(0, 100, TraceKind::Arrival, 1, 2));
        assert_ne!(h, event_hash(1, 100, TraceKind::Relay, 1, 2));
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in EngineMutation::ALL {
            assert_eq!(EngineMutation::from_name(m.name()), Some(m));
        }
        assert_eq!(EngineMutation::from_name("no-such"), None);
    }
}
