//! Flow configuration within a piconet.

use btgs_baseband::{AmAddr, Direction, LogicalChannel, PacketType};
use btgs_traffic::FlowId;
use core::fmt;

/// Static description of one flow carried by the piconet.
///
/// A flow is unidirectional: it moves higher-layer packets either from the
/// master to one slave or from that slave to the master, over either the
/// Guaranteed Service or the best-effort logical channel.
///
/// # Examples
///
/// ```
/// use btgs_piconet::FlowSpec;
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel};
/// use btgs_traffic::FlowId;
///
/// let flow = FlowSpec::new(
///     FlowId(1),
///     AmAddr::new(1).unwrap(),
///     Direction::SlaveToMaster,
///     LogicalChannel::GuaranteedService,
/// );
/// assert!(flow.channel.is_gs());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Flow identifier, unique within a scenario.
    pub id: FlowId,
    /// The slave this flow terminates at (as source or sink).
    pub slave: AmAddr,
    /// Transfer direction.
    pub direction: Direction,
    /// Logical channel (GS or BE).
    pub channel: LogicalChannel,
    /// Per-flow override of the allowed baseband packet types; `None` uses
    /// the piconet-wide set.
    pub allowed_types: Option<Vec<PacketType>>,
}

impl FlowSpec {
    /// Creates a flow using the piconet-wide allowed packet types.
    pub fn new(
        id: FlowId,
        slave: AmAddr,
        direction: Direction,
        channel: LogicalChannel,
    ) -> FlowSpec {
        FlowSpec {
            id,
            slave,
            direction,
            channel,
            allowed_types: None,
        }
    }

    /// Restricts this flow to the given baseband packet types
    /// (builder style).
    #[must_use]
    pub fn with_allowed_types(mut self, types: Vec<PacketType>) -> FlowSpec {
        self.allowed_types = Some(types);
        self
    }

    /// `true` if `other` is this flow's oppositely-directed counterpart on
    /// the same slave and channel — the piggybacking relation of the
    /// paper's admission control (Fig. 3, step d).
    pub fn is_counterpart_of(&self, other: &FlowSpec) -> bool {
        self.id != other.id
            && self.slave == other.slave
            && self.channel == other.channel
            && self.direction == other.direction.reverse()
    }
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {} {}]",
            self.id, self.channel, self.direction, self.slave
        )
    }
}

/// Validates a set of flows for use in one piconet.
///
/// Rules enforced:
/// * flow ids are unique;
/// * at most one flow per `(slave, direction, channel)` triple, so a poll's
///   response is unambiguous (the paper's scenario obeys this: at most one
///   GS flow per direction per slave, sharing polls by piggybacking).
///
/// # Errors
///
/// Returns a human-readable description of the first violated rule.
pub fn validate_flows(flows: &[FlowSpec]) -> Result<(), String> {
    for (i, a) in flows.iter().enumerate() {
        for b in &flows[i + 1..] {
            if a.id == b.id {
                return Err(format!("duplicate flow id {}", a.id));
            }
            if a.slave == b.slave && a.direction == b.direction && a.channel == b.channel {
                return Err(format!(
                    "flows {} and {} both carry {} {} traffic at {}",
                    a.id, b.id, a.channel, a.direction, a.slave
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u8) -> AmAddr {
        AmAddr::new(n).unwrap()
    }

    #[test]
    fn counterpart_detection() {
        let up = FlowSpec::new(
            FlowId(3),
            s(2),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        );
        let down = FlowSpec::new(
            FlowId(2),
            s(2),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        );
        assert!(up.is_counterpart_of(&down));
        assert!(down.is_counterpart_of(&up));
        // Different slave: not counterparts.
        let other = FlowSpec::new(
            FlowId(4),
            s(3),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        );
        assert!(!up.is_counterpart_of(&other));
        // Same direction: not counterparts.
        let same_dir = FlowSpec::new(
            FlowId(5),
            s(2),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        );
        assert!(!up.is_counterpart_of(&same_dir));
        // Different channel: not counterparts.
        let be = FlowSpec::new(
            FlowId(6),
            s(2),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        );
        assert!(!up.is_counterpart_of(&be));
        // A flow is not its own counterpart.
        assert!(!up.is_counterpart_of(&up));
    }

    #[test]
    fn validation_accepts_the_paper_scenario_shape() {
        let flows = vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(2),
                s(2),
                Direction::MasterToSlave,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(3),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(4),
                s(3),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
            FlowSpec::new(
                FlowId(5),
                s(4),
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(6),
                s(4),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ];
        assert!(validate_flows(&flows).is_ok());
    }

    #[test]
    fn validation_rejects_duplicate_ids() {
        let flows = vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(1),
                s(2),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ];
        let err = validate_flows(&flows).unwrap_err();
        assert!(err.contains("duplicate"));
    }

    #[test]
    fn validation_rejects_colliding_flows() {
        let flows = vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(2),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
        ];
        let err = validate_flows(&flows).unwrap_err();
        assert!(err.contains("both carry"));
        // GS and BE on the same (slave, direction) are fine.
        let ok = vec![
            FlowSpec::new(
                FlowId(1),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ),
            FlowSpec::new(
                FlowId(2),
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ),
        ];
        assert!(validate_flows(&ok).is_ok());
    }

    #[test]
    fn display_reads_well() {
        let f = FlowSpec::new(
            FlowId(7),
            s(5),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        );
        assert_eq!(f.to_string(), "flow7 [BE M->S S5]");
    }
}
