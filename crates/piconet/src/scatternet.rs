//! The scatternet layer: N piconets, bridge slaves on deterministic
//! rendezvous schedules, and cross-piconet flows relayed hop by hop.
//!
//! The paper's future-work section points at inter-piconet operation; this
//! module opens that workload without touching the single-piconet
//! semantics:
//!
//! * a [`ShardedFlowArena`] routes every global [`FlowId`] to its
//!   `(PiconetId, FlowIdx)` shard — per-piconet [`FlowTable`]s stay dense
//!   and the global id space stays O(1) to resolve;
//! * [`BridgeSpec`]s describe slaves that time-share between two piconets
//!   on a periodic rendezvous cycle; their [`PresenceWindow`]s are injected
//!   into each piconet's presence mask, so pollers skip absent bridges;
//! * [`ChainSpec`]s compose per-piconet flows into cross-piconet paths.
//!   Packets completing a hop are re-enqueued on the next hop — at the
//!   exchange end for master relays (same device), or when the bridge next
//!   appears in the target piconet (the *residence time*);
//! * [`ScatternetSim`] runs each piconet as an **island**: a full
//!   single-piconet simulator (own timing wheel, own clock) reusing the
//!   single-piconet event handlers verbatim — a piconet inside a
//!   scatternet and a [`PiconetSim`](crate::PiconetSim) run the same
//!   code. Islands only interact through bridge relays, and a relay is
//!   never live before the bridge's next presence window opens in the
//!   target piconet, so the window starts are *conservative sync points*
//!   (classic conservative parallel DES, with the rendezvous schedule as
//!   the lookahead):
//!
//!   ```text
//!    island 0  ──phase──▶|        ──▶|          ──▶|
//!    island 1  ──────────▶|  ─────▶|  ──────────▶|     (each island runs
//!    island 2  ────▶|       ──────▶|    ────────▶|      independently)
//!              ─────┼──────────────┼─────────────┼────▶ simulated time
//!                   B₁             B₂            B₃
//!             window starts = phase boundaries; staged relays
//!             are sorted and injected at each boundary
//!   ```
//!
//!   Within a phase every island advances independently (in parallel with
//!   [`ScatternetSim::with_threads`]); captured bridge crossings are
//!   staged and injected at the boundary in a deterministic total order,
//!   so reports are **byte-identical** across thread counts and island
//!   visit orders;
//! * [`ScatternetReport`] carries each piconet's [`RunReport`] (per-hop
//!   delay statistics included) plus per-chain end-to-end and residence
//!   [`DelayStats`]: with immediate master relays, end-to-end delay is
//!   exactly the sum of per-hop queueing delays plus bridge residence.
//!
//! The steady state is allocation-free like the single-piconet loop: relay
//! outboxes, staging buffers, origin FIFOs and report buffers are
//! pre-reserved at build time.

use crate::config::{PiconetConfig, PiconetError};
use crate::flow::FlowSpec;
use crate::flow_table::{FlowIdHasher, FlowIdx, FlowTable};
use crate::poller::Poller;
use crate::report::RunReport;
use crate::sim::{handle, seed_world, Ev, World};
use btgs_baseband::{ChannelModel, PiconetId, PresenceWindow, ScopedSlave};
use btgs_des::{DetRng, EventQueue, Scheduler, SimDuration, SimTime, Simulator};
use btgs_metrics::DelayStats;
use btgs_traffic::{AppPacket, FlowId, Source};
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How one global flow id resolves to its shard. Mirrors the dense/spread
/// split of the per-piconet id index.
#[derive(Clone, Debug)]
enum RouteIndex {
    /// Direct map for small id spaces: one masked array read.
    Dense(Vec<Option<(PiconetId, FlowIdx)>>),
    /// Fast-hash map for sparse id spaces.
    Spread(HashMap<FlowId, (PiconetId, FlowIdx), BuildHasherDefault<FlowIdHasher>>),
}

/// Largest id the direct map will spend memory on, relative to flow count.
const DENSE_ID_HEADROOM: usize = 64;

/// The sharded flow arena of a scatternet: one dense [`FlowTable`] per
/// piconet, plus a global index from [`FlowId`] to `(PiconetId, FlowIdx)`.
///
/// Flow ids are globally unique across shards (validated at construction),
/// so a global id resolves to exactly one shard — no cross-shard aliasing.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{FlowSpec, FlowTable, ShardedFlowArena};
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel, PiconetId};
/// use btgs_traffic::FlowId;
///
/// let s = |n| AmAddr::new(n).unwrap();
/// let shard0 = FlowTable::new(vec![FlowSpec::new(
///     FlowId(1), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService,
/// )]).unwrap();
/// let shard1 = FlowTable::new(vec![FlowSpec::new(
///     FlowId(101), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService,
/// )]).unwrap();
/// let arena = ShardedFlowArena::new(vec![shard0, shard1]).unwrap();
/// let (pic, idx) = arena.route(FlowId(101)).unwrap();
/// assert_eq!(pic, PiconetId(1));
/// assert_eq!(arena.shard(pic).id(idx), FlowId(101));
/// assert!(arena.route(FlowId(2)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ShardedFlowArena {
    shards: Vec<FlowTable>,
    route: RouteIndex,
    len: usize,
}

impl ShardedFlowArena {
    /// Builds the arena from per-piconet flow tables.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow id appears in more than one shard, or if
    /// there are more than 255 shards (piconet ids are 8-bit).
    pub fn new(shards: Vec<FlowTable>) -> Result<ShardedFlowArena, String> {
        if shards.len() > u8::MAX as usize {
            return Err(format!(
                "{} piconets exceed the 255 the 8-bit PiconetId can name",
                shards.len()
            ));
        }
        let len: usize = shards.iter().map(|t| t.len()).sum();
        let max_id = shards
            .iter()
            .flat_map(|t| t.specs())
            .map(|f| f.id.0 as usize)
            .max()
            .unwrap_or(0);
        let entries = shards.iter().enumerate().flat_map(|(p, t)| {
            t.iter()
                .map(move |(idx, f)| (f.id, (PiconetId(p as u8), idx)))
        });
        let route = if max_id <= len * 8 + DENSE_ID_HEADROOM {
            let mut dense = vec![None; max_id + 1];
            for (id, target) in entries {
                let slot = &mut dense[id.0 as usize];
                if slot.is_some() {
                    return Err(format!("flow id {id} appears in more than one piconet"));
                }
                *slot = Some(target);
            }
            RouteIndex::Dense(dense)
        } else {
            let mut map: HashMap<_, _, BuildHasherDefault<FlowIdHasher>> =
                HashMap::with_capacity_and_hasher(len, BuildHasherDefault::default());
            for (id, target) in entries {
                if map.insert(id, target).is_some() {
                    return Err(format!("flow id {id} appears in more than one piconet"));
                }
            }
            RouteIndex::Spread(map)
        };
        Ok(ShardedFlowArena { shards, route, len })
    }

    /// Number of piconet shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of flows across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no shard holds any flow.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense flow table of one piconet.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn shard(&self, pic: PiconetId) -> &FlowTable {
        &self.shards[pic.index()]
    }

    /// All shards, in piconet order.
    pub fn shards(&self) -> &[FlowTable] {
        &self.shards
    }

    /// Resolves a global flow id to its `(piconet, dense index)` pair,
    /// O(1).
    #[inline]
    pub fn route(&self, id: FlowId) -> Option<(PiconetId, FlowIdx)> {
        match &self.route {
            RouteIndex::Dense(dense) => *dense.get(id.0 as usize)?,
            RouteIndex::Spread(map) => map.get(&id).copied(),
        }
    }

    /// The spec of a global flow id, O(1).
    pub fn spec_of(&self, id: FlowId) -> Option<&FlowSpec> {
        let (pic, idx) = self.route(id)?;
        Some(self.shards[pic.index()].spec(idx))
    }
}

/// A bridge slave: one radio that is `upstream.slave` in piconet
/// `upstream.piconet` and `downstream.slave` in piconet
/// `downstream.piconet`, alternating between the two on a fixed cycle.
///
/// Within every `cycle`, the bridge spends `[0, dwell_upstream)` in the
/// upstream piconet and `[dwell_upstream, cycle)` in the downstream one.
/// Packets cross the bridge in the upstream→downstream direction: a
/// downlink hop delivers to the bridge while it sits upstream, and the
/// relayed packet becomes transmittable downstream when the bridge next
/// appears there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BridgeSpec {
    /// The bridge's identity in the piconet packets arrive from.
    pub upstream: ScopedSlave,
    /// The bridge's identity in the piconet packets continue into.
    pub downstream: ScopedSlave,
    /// Rendezvous cycle length (slot-pair aligned).
    pub cycle: SimDuration,
    /// Time per cycle spent in the upstream piconet; the remainder is spent
    /// downstream.
    pub dwell_upstream: SimDuration,
}

impl BridgeSpec {
    /// The presence windows of the bridge: `(upstream, downstream)`.
    ///
    /// # Errors
    ///
    /// Returns the window validation error (zero dwell, misaligned or
    /// overlong durations).
    pub fn windows(&self) -> Result<(PresenceWindow, PresenceWindow), PiconetError> {
        let up = PresenceWindow::new(self.cycle, SimDuration::ZERO, self.dwell_upstream)
            .map_err(|e| PiconetError(format!("bridge {}: {e}", self.upstream)))?;
        let down = PresenceWindow::new(
            self.cycle,
            self.dwell_upstream,
            self.cycle - self.dwell_upstream,
        )
        .map_err(|e| PiconetError(format!("bridge {}: {e}", self.downstream)))?;
        Ok((up, down))
    }
}

/// A cross-piconet flow: an ordered list of per-piconet hop flows.
///
/// Consecutive hops must share a device: an uplink hop followed by a
/// downlink hop in the same piconet (the master relays internally), or a
/// downlink hop to a bridge slave followed by an uplink hop from that
/// bridge's identity in the next piconet. A bridge may be crossed in
/// either direction — upstream→downstream or back — so bidirectional
/// chains share one rendezvous schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSpec {
    /// The hop flows, in path order. The first hop is fed by a registered
    /// source; every later hop is fed by relaying.
    pub hops: Vec<FlowId>,
    /// The per-hop polling intervals granted by multi-hop admission, in
    /// path order — recorded for reporting/auditing; the simulator itself
    /// polls whatever its per-piconet pollers decide. Empty when the chain
    /// was not admission-controlled; otherwise must match `hops` in
    /// length.
    pub hop_intervals: Vec<SimDuration>,
}

impl ChainSpec {
    /// A chain over `hops` without recorded admission grants.
    pub fn new(hops: Vec<FlowId>) -> ChainSpec {
        ChainSpec {
            hops,
            hop_intervals: Vec::new(),
        }
    }

    /// Attaches the admission-granted per-hop polling intervals (builder
    /// style).
    #[must_use]
    pub fn with_intervals(mut self, hop_intervals: Vec<SimDuration>) -> ChainSpec {
        self.hop_intervals = hop_intervals;
        self
    }
}

/// Static description of a scatternet scenario.
#[derive(Clone, Debug)]
pub struct ScatternetConfig {
    /// The piconets, indexed by [`PiconetId`].
    pub piconets: Vec<PiconetConfig>,
    /// The bridge slaves connecting them.
    pub bridges: Vec<BridgeSpec>,
    /// Cross-piconet flows relayed across the bridges.
    pub chains: Vec<ChainSpec>,
}

/// What happens to a packet that completes delivery on a captured hop.
#[derive(Clone, Copy, Debug)]
enum HopNext {
    /// Last hop of its chain: record end-to-end delay.
    Terminal { chain: u32 },
    /// Relay onto the next hop.
    Forward {
        chain: u32,
        /// Position of the completed hop within the chain (0 = first hop,
        /// whose packet arrival is the chain's origin timestamp).
        hop: u16,
        /// Target piconet.
        pic: u8,
        /// Dense index of the target hop flow in its piconet.
        flow_idx: u32,
        /// Global id of the target hop flow — resolved at build time so
        /// routing a capture needs no cross-island table access.
        flow: FlowId,
        /// Bridge crossings wait for the target-piconet presence window;
        /// `None` is a master-internal relay (immediate).
        window: Option<PresenceWindow>,
    },
}

/// A relay crossing an island boundary, staged until the end of the
/// current phase and injected into the target island by the coordinator.
#[derive(Clone, Copy, Debug)]
struct StagedRelay {
    /// Handoff instant (the bridge's next appearance in the target
    /// piconet). Conservative phase boundaries guarantee `at >= B`.
    at: SimTime,
    /// Target piconet.
    pic: u8,
    /// Dense index of the target hop flow in its piconet.
    flow_idx: u32,
    /// The packet, restamped with the target flow id and handoff arrival.
    pkt: AppPacket,
    /// First-hop arrival of the packet's chain (for end-to-end delay).
    origin: SimTime,
}

/// Per-island share of one chain's statistics; summed across islands at
/// report time.
///
/// Every counter and statistic covers the same packet population: packets
/// whose *origin* (first-hop arrival) falls inside the measurement window.
/// The origin rides along with the packet (in the per-flow origin FIFOs
/// and in [`StagedRelay::origin`]), so the counted check is a direct
/// `origin >= warmup` comparison at every hop.
struct ChainLocal {
    relayed: u64,
    delivered: u64,
    e2e: DelayStats,
    residence: DelayStats,
}

/// One piconet's island: its [`World`] plus the relay fabric it can see
/// without touching any other island.
struct IslandState {
    world: World,
    /// This island's piconet id.
    pic: u8,
    /// `routes[flow_idx]`: relay action for captured flows of this island.
    routes: Vec<Option<HopNext>>,
    /// `origins[flow_idx]`: origin timestamps of in-flight packets on a
    /// relay-fed flow, FIFO — per-flow order is preserved across hops, so
    /// the consuming hop pops its packet's own origin.
    origins: Vec<VecDeque<SimTime>>,
    /// Cross-island relays captured this phase, drained by the
    /// coordinator at the phase boundary.
    staged: Vec<StagedRelay>,
    /// Chain statistics are recorded for packets originating at or after
    /// this instant (the maximum piconet warm-up).
    warmup: SimTime,
    /// This island's share of each chain's statistics.
    chain_stats: Vec<ChainLocal>,
}

/// One island: a full single-piconet simulator (own timing wheel, own
/// clock) over an [`IslandState`].
type IslandSim = Simulator<IslandState, Ev, EventQueue<Ev>>;

/// The per-event handler of one island: the single-piconet handler
/// verbatim, plus capture routing against island-local state only.
fn island_handle(sched: &mut Scheduler<Ev, EventQueue<Ev>>, st: &mut IslandState, ev: Ev) {
    handle(sched, &mut st.world, ev);
    if !st.world.outbox.is_empty() {
        route_captures(sched, st);
    }
}

/// Routes every packet the handler completed on a captured hop. In-island
/// relays (master relays and self-loops) are scheduled directly; bridge
/// crossings are staged for the coordinator. The outbox cannot grow while
/// draining (routing only schedules or stages), so the indexed loop is
/// exact; `Captured` is `Copy`, so each read ends its borrow before the
/// routing mutates the island.
fn route_captures(sched: &mut Scheduler<Ev, EventQueue<Ev>>, st: &mut IslandState) {
    let captured = st.world.outbox.len();
    for i in 0..captured {
        let cap = st.world.outbox[i];
        let Some(next) = st.routes[cap.flow_idx] else {
            debug_assert!(false, "captured flow without a route");
            continue;
        };
        match next {
            HopNext::Terminal { chain } => {
                // The terminal hop is always relay-fed, so its origin FIFO
                // holds this packet's origin at the front.
                let origin = st.origins[cap.flow_idx].pop_front().expect(
                    "per-flow FIFO holds across hops: every terminal delivery has an origin",
                );
                if origin >= st.warmup {
                    let c = &mut st.chain_stats[chain as usize];
                    c.delivered += 1;
                    c.e2e.record(cap.at - origin);
                }
            }
            HopNext::Forward {
                chain,
                hop,
                pic,
                flow_idx,
                flow,
                window,
            } => {
                let origin = if hop == 0 {
                    // First hop: the packet's own arrival starts the clock.
                    cap.pkt.arrival
                } else {
                    st.origins[cap.flow_idx].pop_front().expect(
                        "per-flow FIFO holds across hops: every relayed packet has an origin",
                    )
                };
                let now = sched.now();
                // The handoff instant: immediately for a master-internal
                // relay; when the bridge next appears in the target piconet
                // for a bridge crossing. The `max(now)` only guards against
                // hand-built non-complementary schedules — derived bridge
                // windows always put the next appearance at or after the
                // exchange end.
                let handoff = match &window {
                    Some(w) => w.next_present(cap.at).max(now),
                    None => now,
                };
                if origin >= st.warmup {
                    let c = &mut st.chain_stats[chain as usize];
                    c.relayed += 1;
                    if window.is_some() {
                        c.residence.record(handoff - cap.at);
                    }
                }
                let pkt = AppPacket::new(cap.pkt.seq, flow, cap.pkt.size, handoff);
                if pic == st.pic {
                    // Master relay: same island, immediate re-enqueue.
                    st.origins[flow_idx as usize].push_back(origin);
                    sched.schedule_at(
                        handoff,
                        Ev::Relay {
                            flow_idx: flow_idx as usize,
                            pkt,
                        },
                    );
                } else {
                    st.staged.push(StagedRelay {
                        at: handoff,
                        pic,
                        flow_idx,
                        pkt,
                        origin,
                    });
                }
            }
        }
    }
    st.world.outbox.clear();
}

/// The first start of a presence window strictly after `t`, for the
/// window with `phase` offset into its `cycle`.
fn next_start_after(t: SimTime, phase: SimDuration, cycle: SimDuration) -> SimTime {
    let anchor = SimTime::ZERO + phase;
    if t < anchor {
        return anchor;
    }
    anchor + ((t - anchor).div_duration(cycle) + 1) * cycle
}

/// The next conservative phase boundary after `t`: the earliest instant a
/// staged relay could need to be live in its target island. Only windows
/// that are the *target* of a bridge-crossing route are sync points —
/// bridges no chain routes across never couple two islands.
fn phase_boundary(
    t: SimTime,
    checkpoint: SimTime,
    probed: bool,
    horizon: SimTime,
    sync_points: &[(SimDuration, SimDuration)],
) -> SimTime {
    let mut b = horizon;
    if !probed && checkpoint > t && checkpoint < b {
        b = checkpoint;
    }
    for &(phase, cycle) in sync_points {
        let s = next_start_after(t, phase, cycle);
        if s < b {
            b = s;
        }
    }
    b
}

/// A spinning barrier sized for sub-millisecond phases.
///
/// `std::sync::Barrier` parks threads in the kernel; at the paper's bridge
/// cycles a phase is ~10 ms of simulated time but only a few microseconds
/// of work per island, so wake-up latency would dominate. Island workers
/// instead spin on a generation counter — but only briefly: past a short
/// spin budget each waiter yields to the scheduler, so an oversubscribed
/// run (more threads than cores) degrades to context-switch cost instead
/// of burning whole scheduler quanta spinning against the very thread it
/// is waiting for.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset the count *before* releasing the
            // generation, so a thread racing into the next round cannot
            // observe a stale count.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < 1_000 {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Advances every claimed island to `b`. Work-stealing over the visit
/// `order`: each participant claims the next unclaimed position.
fn claim_islands(cells: &[Mutex<IslandSim>], order: &[usize], cursor: &AtomicUsize, b: SimTime) {
    loop {
        let i = cursor.fetch_add(1, Ordering::AcqRel);
        let Some(&idx) = order.get(i) else { return };
        cells[idx]
            .lock()
            .expect("island workers do not panic while holding the lock")
            .run_until(b, island_handle);
    }
}

/// Drains every island's staged relays into `scratch`, tagged
/// `(handoff, source piconet, capture order)` for the deterministic
/// injection sort.
fn collect_staged(cells: &[Mutex<IslandSim>], scratch: &mut Vec<(SimTime, u8, u32, StagedRelay)>) {
    for cell in cells {
        let mut island = cell.lock().expect("no poisoned islands");
        let st = island.state_mut();
        let pic = st.pic;
        for (k, s) in st.staged.drain(..).enumerate() {
            scratch.push((s.at, pic, k as u32, s));
        }
    }
}

/// Injects staged relays into their target islands in a total
/// deterministic order (handoff instant, then source piconet, then
/// capture order), so the target wheels' same-instant FIFO content is
/// independent of island visit order and thread count. Returns `true` if
/// any relay lands exactly on the phase boundary `b` (those islands must
/// re-run to `b` before the phase can close).
fn inject_staged(
    cells: &[Mutex<IslandSim>],
    scratch: &mut Vec<(SimTime, u8, u32, StagedRelay)>,
    b: SimTime,
) -> bool {
    scratch.sort_unstable_by_key(|&(at, pic, k, _)| (at, pic, k));
    let mut at_boundary = false;
    for &(at, _, _, s) in scratch.iter() {
        let mut island = cells[s.pic as usize].lock().expect("no poisoned islands");
        let (sched, st) = island.split_mut();
        st.origins[s.flow_idx as usize].push_back(s.origin);
        sched.schedule_at(
            at,
            Ev::Relay {
                flow_idx: s.flow_idx as usize,
                pkt: s.pkt,
            },
        );
        at_boundary |= at == b;
    }
    scratch.clear();
    at_boundary
}

/// Runs all islands through the phased conservative loop.
///
/// Per phase: every island independently advances to the boundary `B`
/// (claimed off a shared cursor by `threads` participants, the calling
/// thread included), then the coordinator alone collects, sorts and
/// injects the staged cross-island relays. Relays landing exactly on `B`
/// trigger a boundary round: islands re-run to `B` so same-instant
/// injections are processed in this phase (such a round stages nothing
/// new — an injected relay only enqueues and wakes, and any exchange it
/// starts completes after `B`).
///
/// With `threads == 1` no workers are spawned and the barriers are
/// trivial, so the serial path *is* the parallel algorithm — reports are
/// byte-identical across thread counts by construction.
fn run_phases(
    cells: &[Mutex<IslandSim>],
    order: &[usize],
    sync_points: &[(SimDuration, SimDuration)],
    checkpoint: SimTime,
    horizon: SimTime,
    probe: &mut dyn FnMut(),
    threads: usize,
) {
    let mut scratch: Vec<(SimTime, u8, u32, StagedRelay)> = Vec::with_capacity(1024);
    let barrier = SpinBarrier::new(threads);
    let cursor = AtomicUsize::new(0);
    let bound = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 1..threads {
            let (barrier, cursor, bound, stop) = (&barrier, &cursor, &bound, &stop);
            scope.spawn(move || loop {
                barrier.wait();
                if stop.load(Ordering::Acquire) {
                    return;
                }
                let b = SimTime::ZERO + SimDuration::from_nanos(bound.load(Ordering::Acquire));
                claim_islands(cells, order, cursor, b);
                barrier.wait();
            });
        }

        let run_round = |b: SimTime| {
            bound.store((b - SimTime::ZERO).as_nanos(), Ordering::Release);
            cursor.store(0, Ordering::Release);
            barrier.wait();
            claim_islands(cells, order, &cursor, b);
            barrier.wait();
        };

        let mut t = SimTime::ZERO;
        let mut probed = false;
        loop {
            let b = phase_boundary(t, checkpoint, probed, horizon, sync_points);
            loop {
                run_round(b);
                collect_staged(cells, &mut scratch);
                if scratch.is_empty() {
                    break;
                }
                if !inject_staged(cells, &mut scratch, b) {
                    break;
                }
            }
            if !probed && b >= checkpoint {
                probe();
                probed = true;
            }
            t = b;
            if t >= horizon {
                break;
            }
        }
        probe();

        stop.store(true, Ordering::Release);
        barrier.wait();
    });
}

/// Measurements of one cross-piconet chain.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// The hop flows, in path order.
    pub hops: Vec<FlowId>,
    /// Packets relayed onto a further hop within the measurement window
    /// (counted once per hop crossed).
    pub relayed_packets: u64,
    /// Packets that completed the final hop and originated within the
    /// measurement window (always equal to `e2e.count()`).
    pub delivered_packets: u64,
    /// End-to-end delay: first-hop arrival to final-hop delivery. Equals
    /// the sum of per-hop queueing delays plus the bridge residence times
    /// (master relays are immediate).
    pub e2e: DelayStats,
    /// Bridge residence: delivery at the bridge to the bridge's next
    /// appearance in the target piconet, per bridge crossing.
    pub residence: DelayStats,
}

/// The complete result of one scatternet run.
#[derive(Clone, Debug)]
pub struct ScatternetReport {
    /// Per-piconet run reports (per-hop delay statistics live here, under
    /// the hop flows' ids). Each report's `events_processed` counts the
    /// events of that piconet's own island engine.
    pub piconets: Vec<RunReport>,
    /// Per-chain end-to-end measurements.
    pub chains: Vec<ChainReport>,
    /// Total events processed across all island engines.
    pub events_processed: u64,
}

impl ScatternetReport {
    /// The run report of one piconet.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn piconet(&self, pic: PiconetId) -> &RunReport {
        &self.piconets[pic.index()]
    }

    /// Aggregate delivered throughput over all piconets, in kbit/s.
    pub fn total_throughput_kbps(&self) -> f64 {
        self.piconets
            .iter()
            .map(RunReport::total_throughput_kbps)
            .sum()
    }
}

/// A configured scatternet simulation, ready to run.
///
/// Owns one island simulator per piconet; see the [module docs](self) for
/// the phased conservative execution and the relay semantics.
pub struct ScatternetSim {
    islands: Vec<IslandSim>,
    arena: ShardedFlowArena,
    /// `relay_fed[pic][flow_idx]`: fed by relaying, exempt from the
    /// one-source-per-flow rule.
    relay_fed: Vec<Vec<bool>>,
    /// The chains' hop lists, for report assembly.
    chain_hops: Vec<Vec<FlowId>>,
    /// `(phase, cycle)` of every presence window that is the target of a
    /// bridge-crossing route — the conservative sync points.
    sync_points: Vec<(SimDuration, SimDuration)>,
    threads: usize,
    shuffle_seed: Option<u64>,
}

impl ScatternetSim {
    /// Builds a scatternet simulation.
    ///
    /// `pollers` and `channels` are per piconet, in [`PiconetId`] order.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule: per-piconet configuration errors,
    /// bridge windows that do not fit their cycle, bridges naming unknown
    /// piconets or doubling up on a slave, chains whose hops are unknown,
    /// shared, or not connected device-to-device.
    pub fn new(
        config: ScatternetConfig,
        pollers: Vec<Box<dyn Poller>>,
        channels: Vec<Box<dyn ChannelModel>>,
    ) -> Result<ScatternetSim, PiconetError> {
        let n = config.piconets.len();
        if n == 0 {
            return Err(PiconetError(
                "a scatternet needs at least one piconet".into(),
            ));
        }
        if n > u8::MAX as usize {
            return Err(PiconetError(format!(
                "{n} piconets exceed the 255 the 8-bit PiconetId can name"
            )));
        }
        if pollers.len() != n || channels.len() != n {
            return Err(PiconetError(format!(
                "{n} piconets need exactly {n} pollers and {n} channel models"
            )));
        }

        // Inject the bridge presence windows into each piconet's mask.
        let mut piconets = config.piconets.clone();
        let mut bridge_windows: Vec<(PresenceWindow, PresenceWindow)> =
            Vec::with_capacity(config.bridges.len());
        for b in &config.bridges {
            if b.upstream.piconet.index() >= n || b.downstream.piconet.index() >= n {
                return Err(PiconetError(format!(
                    "bridge {} -> {} names an unknown piconet",
                    b.upstream, b.downstream
                )));
            }
            if b.upstream.piconet == b.downstream.piconet {
                return Err(PiconetError(format!(
                    "bridge {} -> {} must connect two distinct piconets",
                    b.upstream, b.downstream
                )));
            }
            let (up, down) = b.windows()?;
            piconets[b.upstream.piconet.index()]
                .presence
                .set(b.upstream.slave, up)?;
            piconets[b.downstream.piconet.index()]
                .presence
                .set(b.downstream.slave, down)?;
            bridge_windows.push((up, down));
        }

        // Build the per-piconet worlds and the sharded arena over their
        // dense flow tables.
        let mut worlds = Vec::with_capacity(n);
        let mut chans = channels;
        let mut polls = pollers;
        for cfg in piconets.iter().rev() {
            // Pop from the back so ownership moves without index juggling.
            let poller = polls.pop().expect("length checked");
            let channel = chans.pop().expect("length checked");
            worlds.push(World::build(cfg, poller, channel)?);
        }
        worlds.reverse();
        let arena = ShardedFlowArena::new(worlds.iter().map(|w| w.table.clone()).collect())
            .map_err(PiconetError)?;

        // Resolve the chains into relay routes, and record every
        // route-target presence window as a sync point.
        let mut routes: Vec<Vec<Option<HopNext>>> =
            worlds.iter().map(|w| vec![None; w.table.len()]).collect();
        let mut relay_fed: Vec<Vec<bool>> =
            worlds.iter().map(|w| vec![false; w.table.len()]).collect();
        let mut sync_points: Vec<(SimDuration, SimDuration)> = Vec::new();
        let mut chain_hops = Vec::with_capacity(config.chains.len());
        for (ci, chain) in config.chains.iter().enumerate() {
            if chain.hops.len() < 2 {
                return Err(PiconetError(format!(
                    "chain {ci} needs at least two hops (a single-hop chain is just a flow)"
                )));
            }
            if !chain.hop_intervals.is_empty() && chain.hop_intervals.len() != chain.hops.len() {
                return Err(PiconetError(format!(
                    "chain {ci} records {} granted intervals for {} hops",
                    chain.hop_intervals.len(),
                    chain.hops.len()
                )));
            }
            let resolved: Vec<(PiconetId, FlowIdx)> = chain
                .hops
                .iter()
                .map(|id| {
                    arena
                        .route(*id)
                        .ok_or_else(|| PiconetError(format!("chain {ci}: unknown hop flow {id}")))
                })
                .collect::<Result<_, _>>()?;
            for (k, window) in resolved.windows(2).enumerate() {
                let (apic, aidx) = window[0];
                let (bpic, bidx) = window[1];
                let a = arena.shard(apic).spec(aidx);
                let b = arena.shard(bpic).spec(bidx);
                let bridge_window = if apic == bpic {
                    // Master relay: hop k terminates at the master, hop k+1
                    // originates there.
                    if !a.direction.is_uplink() || !b.direction.is_downlink() {
                        return Err(PiconetError(format!(
                            "chain {ci}: hops {} -> {} stay in {apic} but do not relay \
                             through the master (uplink then downlink required)",
                            a.id, b.id
                        )));
                    }
                    None
                } else {
                    // Bridge relay: hop k delivers to the bridge slave, hop
                    // k+1 transmits from its identity in the next piconet.
                    if !a.direction.is_downlink() || !b.direction.is_uplink() {
                        return Err(PiconetError(format!(
                            "chain {ci}: hops {} -> {} cross piconets but do not relay \
                             through a bridge slave (downlink then uplink required)",
                            a.id, b.id
                        )));
                    }
                    // A bridge serves crossings in both directions: the
                    // handoff waits for the bridge's window in whichever
                    // piconet the packet continues into.
                    let from = ScopedSlave::new(apic, a.slave);
                    let into = ScopedSlave::new(bpic, b.slave);
                    let (window, phase, cycle) = config
                        .bridges
                        .iter()
                        .zip(&bridge_windows)
                        .find_map(|(br, (up, down))| {
                            if br.upstream == from && br.downstream == into {
                                Some((*down, br.dwell_upstream, br.cycle))
                            } else if br.upstream == into && br.downstream == from {
                                Some((*up, SimDuration::ZERO, br.cycle))
                            } else {
                                None
                            }
                        })
                        .ok_or_else(|| {
                            PiconetError(format!(
                                "chain {ci}: no bridge connects {apic}/{} to {bpic}/{}",
                                a.slave, b.slave
                            ))
                        })?;
                    if !sync_points.contains(&(phase, cycle)) {
                        sync_points.push((phase, cycle));
                    }
                    Some(window)
                };
                let slot = &mut routes[apic.index()][aidx.get()];
                if slot.is_some() {
                    return Err(PiconetError(format!(
                        "hop flow {} is shared by two chain positions",
                        a.id
                    )));
                }
                *slot = Some(HopNext::Forward {
                    chain: ci as u32,
                    hop: k as u16,
                    pic: bpic.0,
                    flow_idx: bidx.0,
                    flow: b.id,
                    window: bridge_window,
                });
                relay_fed[bpic.index()][bidx.get()] = true;
            }
            let (lpic, lidx) = *resolved.last().expect("at least two hops");
            let slot = &mut routes[lpic.index()][lidx.get()];
            if slot.is_some() {
                return Err(PiconetError(format!(
                    "hop flow {} is shared by two chain positions",
                    arena.shard(lpic).id(lidx)
                )));
            }
            *slot = Some(HopNext::Terminal { chain: ci as u32 });

            chain_hops.push(chain.hops.clone());
        }

        // Arm the capture flags and pre-size the relay machinery.
        for (pic, picroutes) in routes.iter().enumerate() {
            for (idx, r) in picroutes.iter().enumerate() {
                if r.is_some() {
                    worlds[pic].capture[idx] = true;
                    worlds[pic].reserve_relay(idx, 64);
                }
            }
            for (idx, fed) in relay_fed[pic].iter().enumerate() {
                if *fed {
                    worlds[pic].reserve_relay(idx, 64);
                }
            }
        }

        let warmup = piconets
            .iter()
            .map(|c| SimTime::ZERO + c.warmup)
            .max()
            .expect("at least one piconet");

        // Assemble the islands: per-piconet stat shares sized so the
        // steady state stays allocation-free.
        let num_chains = chain_hops.len();
        let islands = worlds
            .into_iter()
            .zip(routes)
            .enumerate()
            .map(|(pic, (world, routes))| {
                let origins = relay_fed[pic]
                    .iter()
                    .map(|fed| {
                        if *fed {
                            VecDeque::with_capacity(1024)
                        } else {
                            VecDeque::new()
                        }
                    })
                    .collect();
                let mut chain_stats: Vec<ChainLocal> = (0..num_chains)
                    .map(|_| ChainLocal {
                        relayed: 0,
                        delivered: 0,
                        e2e: DelayStats::new(),
                        residence: DelayStats::new(),
                    })
                    .collect();
                for r in routes.iter().flatten() {
                    match r {
                        HopNext::Terminal { chain } => {
                            chain_stats[*chain as usize].e2e.reserve(4096);
                        }
                        HopNext::Forward { chain, window, .. } if window.is_some() => {
                            chain_stats[*chain as usize].residence.reserve(4096);
                        }
                        HopNext::Forward { .. } => {}
                    }
                }
                let state = IslandState {
                    world,
                    pic: pic as u8,
                    routes,
                    origins,
                    staged: Vec::with_capacity(128),
                    warmup,
                    chain_stats,
                };
                Simulator::with_queue(state, EventQueue::new())
            })
            .collect();

        Ok(ScatternetSim {
            islands,
            arena,
            relay_fed,
            chain_hops,
            sync_points,
            threads: 1,
            shuffle_seed: None,
        })
    }

    /// Sets the number of threads advancing islands in parallel (builder
    /// style). Clamped to at least 1 and at most the piconet count at run
    /// time; reports are byte-identical across thread counts.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ScatternetSim {
        self.threads = threads.max(1);
        self
    }

    /// Permutes the island visit order with a deterministic
    /// [`DetRng`]-driven shuffle (builder style). The reports do not
    /// depend on the visit order; this exists so equivalence tests can
    /// prove it.
    #[must_use]
    pub fn with_island_shuffle(mut self, seed: u64) -> ScatternetSim {
        self.shuffle_seed = Some(seed);
        self
    }

    /// The sharded flow arena (global id routing) of this scatternet.
    pub fn arena(&self) -> &ShardedFlowArena {
        &self.arena
    }

    /// Registers the traffic source of one flow, resolved through the
    /// global id space.
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown, already has a source, or
    /// names a relay-fed hop (those are fed by the previous hop).
    pub fn add_source(&mut self, source: Box<dyn Source>) -> Result<(), PiconetError> {
        let id = source.flow();
        if let Some((pic, idx)) = self.arena.route(id) {
            if self.relay_fed[pic.index()][idx.get()] {
                return Err(PiconetError(format!(
                    "flow {id} is relay-fed; it cannot also have a source"
                )));
            }
            return self.islands[pic.index()]
                .state_mut()
                .world
                .add_source(source);
        }
        // SCO voice flows are not in the arena: route to the world whose
        // SCO binding claims the id.
        match self
            .islands
            .iter_mut()
            .position(|i| i.state_mut().world.has_sco_voice(id))
        {
            Some(pic) => self.islands[pic].state_mut().world.add_source(source),
            None => Err(PiconetError(format!("no flow {id} configured"))),
        }
    }

    /// Runs the scatternet until `horizon` and returns the report.
    /// (Consuming `self` makes a second run unrepresentable.)
    ///
    /// # Errors
    ///
    /// Returns an error if a non-relay-fed flow lacks a source or a
    /// warm-up reaches past the horizon.
    pub fn run(self, horizon: SimTime) -> Result<ScatternetReport, PiconetError> {
        self.run_probed(horizon, horizon, &mut || {})
    }

    /// Runs to `horizon`, invoking `probe` when the clock reaches
    /// `checkpoint` and once more when the run loop finishes (before report
    /// assembly) — the same bracketing hook as
    /// [`PiconetSim::run_probed`](crate::PiconetSim::run_probed), used by
    /// the zero-allocation gate. The probe always fires at a phase
    /// boundary, with every island at the same instant and no worker
    /// holding a lock.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`].
    pub fn run_probed(
        mut self,
        checkpoint: SimTime,
        horizon: SimTime,
        probe: &mut dyn FnMut(),
    ) -> Result<ScatternetReport, PiconetError> {
        // `self` is consumed, so a sim cannot run twice by construction.
        for (pic, island) in self.islands.iter_mut().enumerate() {
            let fed = &self.relay_fed[pic];
            let (sched, st) = island.split_mut();
            st.world.check_sources(&|idx| fed[idx])?;
            st.world.check_horizon(horizon)?;
            st.world.horizon = horizon;
            seed_world(sched, &mut st.world);
        }

        // The island visit order: identity, or a deterministic shuffle to
        // prove order independence.
        let mut order: Vec<usize> = (0..self.islands.len()).collect();
        if let Some(seed) = self.shuffle_seed {
            let mut rng = DetRng::seed_from_u64(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.below(i as u64 + 1) as usize);
            }
        }
        let threads = self.threads.min(order.len()).max(1);

        let cells: Vec<Mutex<IslandSim>> = self.islands.into_iter().map(Mutex::new).collect();
        run_phases(
            &cells,
            &order,
            &self.sync_points,
            checkpoint,
            horizon,
            probe,
            threads,
        );

        let mut chains: Vec<ChainReport> = self
            .chain_hops
            .into_iter()
            .map(|hops| ChainReport {
                hops,
                relayed_packets: 0,
                delivered_packets: 0,
                e2e: DelayStats::new(),
                residence: DelayStats::new(),
            })
            .collect();
        let mut piconets = Vec::with_capacity(cells.len());
        let mut events_processed = 0;
        for cell in cells {
            let island = cell.into_inner().expect("no poisoned islands");
            let events = island.events_processed();
            events_processed += events;
            let st = island.into_state();
            for (ci, local) in st.chain_stats.into_iter().enumerate() {
                let report = &mut chains[ci];
                report.relayed_packets += local.relayed;
                report.delivered_packets += local.delivered;
                report.e2e.merge(&local.e2e);
                report.residence.merge(&local.residence);
            }
            piconets.push(st.world.into_report(horizon, events));
        }
        Ok(ScatternetReport {
            piconets,
            chains,
            events_processed,
        })
    }
}
