//! The scatternet layer: N piconets, bridge slaves on deterministic
//! rendezvous schedules, and cross-piconet flows relayed hop by hop.
//!
//! The paper's future-work section points at inter-piconet operation; this
//! module opens that workload without touching the single-piconet
//! semantics:
//!
//! * a [`ShardedFlowArena`] routes every global [`FlowId`] to its
//!   `(PiconetId, FlowIdx)` shard — per-piconet [`FlowTable`]s stay dense
//!   and the global id space stays O(1) to resolve;
//! * [`BridgeSpec`]s describe slaves that time-share between two piconets
//!   on a periodic rendezvous cycle; their [`PresenceWindow`]s are injected
//!   into each piconet's presence mask, so pollers skip absent bridges;
//! * [`ChainSpec`]s compose per-piconet flows into cross-piconet paths.
//!   Packets completing a hop are re-enqueued on the next hop — at the
//!   exchange end for master relays (same device), or when the bridge next
//!   appears in the target piconet (the *residence time*);
//! * [`ScatternetSim`] runs each piconet as an **island**: a full
//!   single-piconet simulator (own timing wheel, own clock) reusing the
//!   single-piconet event handlers verbatim — a piconet inside a
//!   scatternet and a [`PiconetSim`](crate::PiconetSim) run the same
//!   code. Islands only interact through bridge relays, and a relay is
//!   never live before the bridge's next presence window opens in the
//!   target piconet, so the window starts are *conservative sync points*
//!   (classic conservative parallel DES, with the rendezvous schedule as
//!   the lookahead):
//!
//!   ```text
//!    island 0  ──phase──▶|        ──▶|          ──▶|
//!    island 1  ──────────▶|  ─────▶|  ──────────▶|     (each island runs
//!    island 2  ────▶|       ──────▶|    ────────▶|      independently)
//!              ─────┼──────────────┼─────────────┼────▶ simulated time
//!                   B₁             B₂            B₃
//!             window starts = phase boundaries; staged relays
//!             pool at the coordinator, injected when t == handoff
//!   ```
//!
//!   The window starts form a precomputed **boundary calendar**: coincident
//!   `(phase, cycle)` windows from different bridges merge into one
//!   [`SyncPoint`] group that also remembers which islands feed it.
//!   Phases are **adaptive**: a group's starts only become boundaries
//!   while some source island could actually hold chain traffic (a
//!   conservative per-island hotness instant derived from its in-flight
//!   chain count and pending entry arrivals) — otherwise the phase widens
//!   straight across them. Idle islands (next event past the boundary)
//!   are never claimed, locked or drained, and staged relays park in a
//!   coordinator-side pool until the round clock reaches their handoff
//!   instant, at which point the target island has provably processed
//!   every own event at that instant. The injection order — handoff
//!   instant, then source piconet, then staging sequence — is a total
//!   order, so reports are **byte-identical** across thread counts,
//!   island visit orders, and the widening/batching toggles
//!   ([`ScatternetSim::with_phase_widening`],
//!   [`ScatternetSim::with_phase_batching`]);
//! * [`ScatternetReport`] carries each piconet's [`RunReport`] (per-hop
//!   delay statistics included) plus per-chain end-to-end and residence
//!   [`DelayStats`]: with immediate master relays, end-to-end delay is
//!   exactly the sum of per-hop queueing delays plus bridge residence.
//!
//! The steady state is allocation-free like the single-piconet loop: relay
//! outboxes, staging buffers, origin FIFOs and report buffers are
//! pre-reserved at build time.

use crate::config::{PiconetConfig, PiconetError};
use crate::flow::FlowSpec;
use crate::flow_table::{FlowIdHasher, FlowIdx, FlowTable};
use crate::poller::Poller;
use crate::report::RunReport;
use crate::sanitizer::{
    EngineMutation, EngineSanitizer, IslandProbe, RunTrace, SanitizedRun, SanitizerReport,
    TraceConfig, TraceKind,
};
use crate::sim::{handle, seed_world, Ev, Target, World};
use crate::sync_protocol::{
    barrier_wait, claim_next, collect_staged, publish_staged, BarrierOrderings, StagedOrderings,
    SyncEnv,
};
use crate::telemetry::{CoordObs, EventMeter, IslandObs, ObsConfig, ObservedRun};
use btgs_baseband::{ChannelModel, PiconetId, PresenceWindow, ScopedSlave};
use btgs_des::{DetRng, EventQueue, Scheduler, SimDuration, SimTime, Simulator};
use btgs_metrics::DelayStats;
use btgs_traffic::{AppPacket, FlowId, Source};
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How one global flow id resolves to its shard. Mirrors the dense/spread
/// split of the per-piconet id index.
#[derive(Clone, Debug)]
enum RouteIndex {
    /// Direct map for small id spaces: one masked array read.
    Dense(Vec<Option<(PiconetId, FlowIdx)>>),
    /// Fast-hash map for sparse id spaces.
    // analyze: allow(hash-iter): lookup-only — `route` does keyed `get`s and
    // nothing ever iterates the map, so hash order cannot reach a report.
    Spread(HashMap<FlowId, (PiconetId, FlowIdx), BuildHasherDefault<FlowIdHasher>>),
}

/// Largest id the direct map will spend memory on, relative to flow count.
const DENSE_ID_HEADROOM: usize = 64;

/// The sharded flow arena of a scatternet: one dense [`FlowTable`] per
/// piconet, plus a global index from [`FlowId`] to `(PiconetId, FlowIdx)`.
///
/// Flow ids are globally unique across shards (validated at construction),
/// so a global id resolves to exactly one shard — no cross-shard aliasing.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{FlowSpec, FlowTable, ShardedFlowArena};
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel, PiconetId};
/// use btgs_traffic::FlowId;
///
/// let s = |n| AmAddr::new(n).unwrap();
/// let shard0 = FlowTable::new(vec![FlowSpec::new(
///     FlowId(1), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService,
/// )]).unwrap();
/// let shard1 = FlowTable::new(vec![FlowSpec::new(
///     FlowId(101), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService,
/// )]).unwrap();
/// let arena = ShardedFlowArena::new(vec![shard0, shard1]).unwrap();
/// let (pic, idx) = arena.route(FlowId(101)).unwrap();
/// assert_eq!(pic, PiconetId(1));
/// assert_eq!(arena.shard(pic).id(idx), FlowId(101));
/// assert!(arena.route(FlowId(2)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ShardedFlowArena {
    shards: Vec<FlowTable>,
    route: RouteIndex,
    len: usize,
}

impl ShardedFlowArena {
    /// Builds the arena from per-piconet flow tables.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow id appears in more than one shard, or if
    /// there are more than 65535 shards (piconet ids are 16-bit).
    pub fn new(shards: Vec<FlowTable>) -> Result<ShardedFlowArena, String> {
        if shards.len() > u16::MAX as usize {
            return Err(format!(
                "{} piconets exceed the 65535 the 16-bit PiconetId can name",
                shards.len()
            ));
        }
        let len: usize = shards.iter().map(|t| t.len()).sum();
        let max_id = shards
            .iter()
            .flat_map(|t| t.specs())
            .map(|f| f.id.0 as usize)
            .max()
            .unwrap_or(0);
        let entries = shards.iter().enumerate().flat_map(|(p, t)| {
            t.iter()
                .map(move |(idx, f)| (f.id, (PiconetId(p as u16), idx)))
        });
        let route = if max_id <= len * 8 + DENSE_ID_HEADROOM {
            let mut dense = vec![None; max_id + 1];
            for (id, target) in entries {
                let slot = &mut dense[id.0 as usize];
                if slot.is_some() {
                    return Err(format!("flow id {id} appears in more than one piconet"));
                }
                *slot = Some(target);
            }
            RouteIndex::Dense(dense)
        } else {
            // analyze: allow(hash-iter): construction of the lookup-only
            // route index; filled by keyed inserts from the deterministic
            // shard iteration, never iterated itself.
            let mut map: HashMap<_, _, BuildHasherDefault<FlowIdHasher>> =
                // analyze: allow(hash-iter): see above — same site.
                HashMap::with_capacity_and_hasher(len, BuildHasherDefault::default());
            for (id, target) in entries {
                if map.insert(id, target).is_some() {
                    return Err(format!("flow id {id} appears in more than one piconet"));
                }
            }
            RouteIndex::Spread(map)
        };
        Ok(ShardedFlowArena { shards, route, len })
    }

    /// Number of piconet shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of flows across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no shard holds any flow.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense flow table of one piconet.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn shard(&self, pic: PiconetId) -> &FlowTable {
        &self.shards[pic.index()]
    }

    /// All shards, in piconet order.
    pub fn shards(&self) -> &[FlowTable] {
        &self.shards
    }

    /// Resolves a global flow id to its `(piconet, dense index)` pair,
    /// O(1).
    #[inline]
    pub fn route(&self, id: FlowId) -> Option<(PiconetId, FlowIdx)> {
        match &self.route {
            RouteIndex::Dense(dense) => *dense.get(id.0 as usize)?,
            RouteIndex::Spread(map) => map.get(&id).copied(),
        }
    }

    /// The spec of a global flow id, O(1).
    pub fn spec_of(&self, id: FlowId) -> Option<&FlowSpec> {
        let (pic, idx) = self.route(id)?;
        Some(self.shards[pic.index()].spec(idx))
    }
}

/// A bridge slave: one radio that is `upstream.slave` in piconet
/// `upstream.piconet` and `downstream.slave` in piconet
/// `downstream.piconet`, alternating between the two on a fixed cycle.
///
/// Within every `cycle`, the bridge spends `[0, dwell_upstream)` in the
/// upstream piconet and `[dwell_upstream, cycle)` in the downstream one.
/// Packets cross the bridge in the upstream→downstream direction: a
/// downlink hop delivers to the bridge while it sits upstream, and the
/// relayed packet becomes transmittable downstream when the bridge next
/// appears there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BridgeSpec {
    /// The bridge's identity in the piconet packets arrive from.
    pub upstream: ScopedSlave,
    /// The bridge's identity in the piconet packets continue into.
    pub downstream: ScopedSlave,
    /// Rendezvous cycle length (slot-pair aligned).
    pub cycle: SimDuration,
    /// Time per cycle spent in the upstream piconet; the remainder is spent
    /// downstream.
    pub dwell_upstream: SimDuration,
}

impl BridgeSpec {
    /// The presence windows of the bridge: `(upstream, downstream)`.
    ///
    /// # Errors
    ///
    /// Returns the window validation error (zero dwell, misaligned or
    /// overlong durations).
    pub fn windows(&self) -> Result<(PresenceWindow, PresenceWindow), PiconetError> {
        let up = PresenceWindow::new(self.cycle, SimDuration::ZERO, self.dwell_upstream)
            .map_err(|e| PiconetError(format!("bridge {}: {e}", self.upstream)))?;
        let down = PresenceWindow::new(
            self.cycle,
            self.dwell_upstream,
            self.cycle - self.dwell_upstream,
        )
        .map_err(|e| PiconetError(format!("bridge {}: {e}", self.downstream)))?;
        Ok((up, down))
    }
}

/// A cross-piconet flow: an ordered list of per-piconet hop flows.
///
/// Consecutive hops must share a device: an uplink hop followed by a
/// downlink hop in the same piconet (the master relays internally), or a
/// downlink hop to a bridge slave followed by an uplink hop from that
/// bridge's identity in the next piconet. A bridge may be crossed in
/// either direction — upstream→downstream or back — so bidirectional
/// chains share one rendezvous schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSpec {
    /// The hop flows, in path order. The first hop is fed by a registered
    /// source; every later hop is fed by relaying.
    pub hops: Vec<FlowId>,
    /// The per-hop polling intervals granted by multi-hop admission, in
    /// path order — recorded for reporting/auditing; the simulator itself
    /// polls whatever its per-piconet pollers decide. Empty when the chain
    /// was not admission-controlled; otherwise must match `hops` in
    /// length.
    pub hop_intervals: Vec<SimDuration>,
}

impl ChainSpec {
    /// A chain over `hops` without recorded admission grants.
    pub fn new(hops: Vec<FlowId>) -> ChainSpec {
        ChainSpec {
            hops,
            hop_intervals: Vec::new(),
        }
    }

    /// Attaches the admission-granted per-hop polling intervals (builder
    /// style).
    #[must_use]
    pub fn with_intervals(mut self, hop_intervals: Vec<SimDuration>) -> ChainSpec {
        self.hop_intervals = hop_intervals;
        self
    }
}

/// Static description of a scatternet scenario.
#[derive(Clone, Debug)]
pub struct ScatternetConfig {
    /// The piconets, indexed by [`PiconetId`].
    pub piconets: Vec<PiconetConfig>,
    /// The bridge slaves connecting them.
    pub bridges: Vec<BridgeSpec>,
    /// Cross-piconet flows relayed across the bridges.
    pub chains: Vec<ChainSpec>,
}

/// What happens to a packet that completes delivery on a captured hop.
#[derive(Clone, Copy, Debug)]
enum HopNext {
    /// Last hop of its chain: record end-to-end delay.
    Terminal { chain: u32 },
    /// Relay onto the next hop.
    Forward {
        chain: u32,
        /// Position of the completed hop within the chain (0 = first hop,
        /// whose packet arrival is the chain's origin timestamp).
        hop: u16,
        /// Target piconet.
        pic: u16,
        /// Dense index of the target hop flow in its piconet.
        flow_idx: u32,
        /// Global id of the target hop flow — resolved at build time so
        /// routing a capture needs no cross-island table access.
        flow: FlowId,
        /// Bridge crossings wait for the target-piconet presence window;
        /// `None` is a master-internal relay (immediate).
        window: Option<PresenceWindow>,
    },
}

/// A relay crossing an island boundary, staged until the end of the
/// current phase and injected into the target island by the coordinator.
#[derive(Clone, Copy, Debug)]
struct StagedRelay {
    /// Handoff instant (the bridge's next appearance in the target
    /// piconet). Conservative phase boundaries guarantee `at >= B`.
    at: SimTime,
    /// Target piconet.
    pic: u16,
    /// Dense index of the target hop flow in its piconet.
    flow_idx: u32,
    /// The packet, restamped with the target flow id and handoff arrival.
    pkt: AppPacket,
    /// First-hop arrival of the packet's chain (for end-to-end delay).
    origin: SimTime,
}

/// Per-island share of one chain's statistics; summed across islands at
/// report time.
///
/// Every counter and statistic covers the same packet population: packets
/// whose *origin* (first-hop arrival) falls inside the measurement window.
/// The origin rides along with the packet (in the per-flow origin FIFOs
/// and in [`StagedRelay::origin`]), so the counted check is a direct
/// `origin >= warmup` comparison at every hop.
struct ChainLocal {
    relayed: u64,
    delivered: u64,
    e2e: DelayStats,
    residence: DelayStats,
}

/// One piconet's island: its [`World`] plus the relay fabric it can see
/// without touching any other island.
struct IslandState {
    world: World,
    /// This island's piconet id.
    pic: u16,
    /// `routes[flow_idx]`: relay action for captured flows of this island.
    routes: Vec<Option<HopNext>>,
    /// `origins[flow_idx]`: origin timestamps of in-flight packets on a
    /// relay-fed flow, FIFO — per-flow order is preserved across hops, so
    /// the consuming hop pops its packet's own origin.
    origins: Vec<VecDeque<SimTime>>,
    /// Cross-island relays captured this phase, drained by the
    /// coordinator at the phase boundary.
    staged: Vec<StagedRelay>,
    /// Monotone count of relays ever staged by this island — the staging
    /// sequence assigned at collect time, the last key of the
    /// deterministic pool injection order. Never reset, so the key is
    /// unique across the whole run.
    staged_seq: u64,
    /// Source indexes (into the world's source list) feeding chain-entry
    /// flows; their next-arrival instants bound this island's chain
    /// hotness when nothing is in flight. Filled at run start.
    entry_sources: Vec<usize>,
    /// Chain statistics are recorded for packets originating at or after
    /// this instant (the maximum piconet warm-up).
    warmup: SimTime,
    /// This island's share of each chain's statistics.
    chain_stats: Vec<ChainLocal>,
    /// Instrumentation hook of the sanitizer/bisector seam: `None` (one
    /// machine word, no allocation) on default runs, installed by the
    /// instrumented run paths. The uninstrumented handler
    /// monomorphisation never reads it.
    probe: Option<Box<IslandProbe>>,
}

/// One island: a full single-piconet simulator (own timing wheel, own
/// clock) over an [`IslandState`].
type IslandSim = Simulator<IslandState, Ev, EventQueue<Ev>>;

/// The per-event handler of one island: the single-piconet handler
/// verbatim, plus capture routing against island-local state only.
///
/// `I` selects the instrumented monomorphisation (sanitizer/trace probes
/// on every event). Default runs use `I = false`, which compiles to
/// exactly the pre-seam handler — the zero-allocation gate and the
/// steady-state benches run that code path.
fn island_handle<const I: bool>(
    sched: &mut Scheduler<Ev, EventQueue<Ev>>,
    st: &mut IslandState,
    ev: Ev,
) {
    if I {
        if let Some(probe) = st.probe.as_deref_mut() {
            let (kind, a, b) = trace_descriptor(&ev);
            probe.on_event(sched.now(), kind, a, b);
        }
    }
    handle(sched, &mut st.world, ev);
    if !st.world.outbox.is_empty() {
        route_captures::<I>(sched, st);
    }
    if I {
        if let Some(probe) = st.probe.as_deref_mut() {
            probe.after_event();
        }
    }
}

/// The `(kind, a, b)` descriptor of an island event, as folded into the
/// rolling trace hash — enough to identify the event in an aligned
/// bisection window without storing packets.
fn trace_descriptor(ev: &Ev) -> (TraceKind, u64, u64) {
    match ev {
        Ev::Arrival { source_idx, pkt } => (TraceKind::Arrival, *source_idx as u64, pkt.seq),
        Ev::Wake => (TraceKind::Wake, 0, 0),
        Ev::ExchangeDone => (TraceKind::ExchangeDone, 0, 0),
        Ev::ScoDone { sco_idx, start } => (TraceKind::ScoDone, *sco_idx as u64, nanos_of(*start)),
        Ev::Relay { flow_idx, pkt } => (TraceKind::Relay, *flow_idx as u64, pkt.seq),
    }
}

/// Routes every packet the handler completed on a captured hop. In-island
/// relays (master relays and self-loops) are scheduled directly; bridge
/// crossings are staged for the coordinator. The outbox cannot grow while
/// draining (routing only schedules or stages), so the indexed loop is
/// exact; `Captured` is `Copy`, so each read ends its borrow before the
/// routing mutates the island.
fn route_captures<const I: bool>(sched: &mut Scheduler<Ev, EventQueue<Ev>>, st: &mut IslandState) {
    let captured = st.world.outbox.len();
    for i in 0..captured {
        let cap = st.world.outbox[i];
        let Some(next) = st.routes[cap.flow_idx] else {
            debug_assert!(false, "captured flow without a route");
            continue;
        };
        match next {
            HopNext::Terminal { chain } => {
                // The terminal hop is always relay-fed, so its origin FIFO
                // holds this packet's origin at the front.
                let origin = st.origins[cap.flow_idx].pop_front().expect(
                    "per-flow FIFO holds across hops: every terminal delivery has an origin",
                );
                debug_assert!(st.world.chain_inflight > 0);
                st.world.chain_inflight = st.world.chain_inflight.saturating_sub(1);
                if origin >= st.warmup {
                    let c = &mut st.chain_stats[chain as usize];
                    c.delivered += 1;
                    c.e2e.record(cap.at - origin);
                }
            }
            HopNext::Forward {
                chain,
                hop,
                pic,
                flow_idx,
                flow,
                window,
            } => {
                let origin = if hop == 0 {
                    // First hop: the packet's own arrival starts the clock.
                    cap.pkt.arrival
                } else {
                    st.origins[cap.flow_idx].pop_front().expect(
                        "per-flow FIFO holds across hops: every relayed packet has an origin",
                    )
                };
                let now = sched.now();
                // The handoff instant: immediately for a master-internal
                // relay; when the bridge next appears in the target piconet
                // for a bridge crossing. The `max(now)` only guards against
                // hand-built non-complementary schedules — derived bridge
                // windows always put the next appearance at or after the
                // exchange end.
                let handoff = match &window {
                    Some(w) => w.next_present(cap.at).max(now),
                    None => now,
                };
                if origin >= st.warmup {
                    let c = &mut st.chain_stats[chain as usize];
                    c.relayed += 1;
                    if window.is_some() {
                        c.residence.record(handoff - cap.at);
                    }
                }
                let pkt = AppPacket::new(cap.pkt.seq, flow, cap.pkt.size, handoff);
                if pic == st.pic {
                    // Master relay: same island, immediate re-enqueue.
                    st.origins[flow_idx as usize].push_back(origin);
                    sched.schedule_at(
                        handoff,
                        Ev::Relay {
                            flow_idx: flow_idx as usize,
                            pkt,
                        },
                    );
                    if I {
                        if let Some(probe) = st.probe.as_deref_mut() {
                            probe.on_scheduled_relay(handoff, flow_idx, pkt.seq);
                        }
                    }
                } else {
                    // The packet leaves this island: it stops counting
                    // against the local chain backlog and is re-counted in
                    // the target island when the coordinator injects it.
                    debug_assert!(st.world.chain_inflight > 0);
                    st.world.chain_inflight = st.world.chain_inflight.saturating_sub(1);
                    st.staged.push(StagedRelay {
                        at: handoff,
                        pic,
                        flow_idx,
                        pkt,
                        origin,
                    });
                    if I {
                        if let Some(probe) = st.probe.as_deref_mut() {
                            probe.on_staged(pic, flow_idx, handoff, pkt.seq);
                        }
                    }
                }
            }
        }
    }
    st.world.outbox.clear();
}

/// The first start of a presence window strictly after `t`, for the
/// window with `phase` offset into its `cycle`.
fn next_start_after(t: SimTime, phase: SimDuration, cycle: SimDuration) -> SimTime {
    let anchor = SimTime::ZERO + phase;
    if t < anchor {
        return anchor;
    }
    anchor + ((t - anchor).div_duration(cycle) + 1) * cycle
}

/// One calendar group: every bridge presence window sharing `(phase,
/// cycle)` — their starts coincide, so they contribute the same sync
/// instants — plus the source islands whose staged relays land at those
/// starts.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SyncPoint {
    /// Offset of the window start into its cycle.
    phase: SimDuration,
    /// The rendezvous cycle.
    cycle: SimDuration,
    /// Source piconets of every bridge-crossing route whose handoffs land
    /// at this group's window starts (deduplicated). Adaptive widening
    /// drops the group's starts from the boundary set while every source
    /// is provably unable to stage such a relay.
    sources: Vec<u16>,
}

/// Registers one bridge-crossing route in the calendar: coincident
/// `(phase, cycle)` windows from different bridges share a group, and
/// `source` joins the group's hot-source set.
fn push_sync_point(
    points: &mut Vec<SyncPoint>,
    phase: SimDuration,
    cycle: SimDuration,
    source: u16,
) {
    match points
        .iter_mut()
        .find(|g| g.phase == phase && g.cycle == cycle)
    {
        Some(g) => {
            if !g.sources.contains(&source) {
                g.sources.push(source);
            }
        }
        None => points.push(SyncPoint {
            phase,
            cycle,
            sources: vec![source],
        }),
    }
}

/// The next phase boundary after `t`.
///
/// A calendar group's window start `s` must be a boundary only if some
/// source island of the group could stage a relay landing at `s`. Island
/// `i`'s conservative hotness `hot_from(i)` is the earliest instant chain
/// traffic could be inside it (`ZERO` while packets are in flight,
/// otherwise the earliest chain-entry arrival, `MAX` if it feeds no chain
/// and holds nothing): a packet entering at `hot_from` is delivered
/// strictly later and handed off at a window start strictly later still,
/// so island `i` only produces handoffs at starts strictly after
/// `hot_from(i)`. The boundary is the earliest needed start across
/// groups, capped by the earliest pooled relay handoff (every pending
/// injection instant is a mandatory boundary), the probe checkpoint, and
/// the horizon. With `widening` off every group counts as hot from time
/// zero, so every calendar start is a boundary — the fixed cadence the
/// equivalence tests compare against.
#[allow(clippy::too_many_arguments)]
fn next_boundary(
    t: SimTime,
    checkpoint: SimTime,
    probed: bool,
    horizon: SimTime,
    pool_min: Option<SimTime>,
    groups: &[SyncPoint],
    widening: bool,
    hot_from: impl Fn(usize) -> SimTime,
) -> SimTime {
    let mut b = horizon;
    if !probed && checkpoint > t && checkpoint < b {
        b = checkpoint;
    }
    if let Some(p) = pool_min {
        debug_assert!(
            p > t,
            "relays due at or before t are injected before rounds"
        );
        if p < b {
            b = p;
        }
    }
    for g in groups {
        let hot = if widening {
            g.sources
                .iter()
                .map(|&p| hot_from(p as usize))
                .min()
                .unwrap_or(SimTime::MAX)
        } else {
            SimTime::ZERO
        };
        if hot >= b {
            continue; // earliest landable start > hot >= b: cannot lower b
        }
        let s = next_start_after(t.max(hot), g.phase, g.cycle);
        if s < b {
            b = s;
        }
    }
    b
}

/// The earliest calendar window start strictly after `t`, hotness
/// ignored — what the boundary at `t` would have been with widening off.
/// A widened phase is one whose chosen boundary lies strictly past this
/// instant; the engine counts those as `widening_stretches`.
fn earliest_calendar_start(t: SimTime, groups: &[SyncPoint]) -> SimTime {
    groups
        .iter()
        .map(|g| next_start_after(t, g.phase, g.cycle))
        .min()
        .unwrap_or(SimTime::MAX)
}

/// Spin iterations before a barrier waiter starts yielding.
const SPIN_BUDGET: u32 = 1_000;

/// Yields before the barrier decides the host is oversubscribed and
/// falls back to sleeping.
const YIELD_BUDGET: u32 = 64;

/// Cap on the backoff exponent: sleeps top out at `2^8` µs, the order of
/// a scheduler quantum.
const BACKOFF_CAP_EXP: u32 = 8;

/// A spinning barrier sized for sub-millisecond phases.
///
/// `std::sync::Barrier` parks threads in the kernel; at the paper's bridge
/// cycles a phase is ~10 ms of simulated time but only a few microseconds
/// of work per island, so wake-up latency would dominate. Island workers
/// instead spin on a generation counter with an adaptive budget: a short
/// hot spin, then scheduler yields, and — once the yield count says the
/// host is oversubscribed (more runnable threads than cores, so the
/// release this waiter needs may be starved by the waiter itself) —
/// exponential-backoff sleeps capped near a scheduler quantum.
struct SpinBarrier {
    n: u64,
    count: AtomicU64,
    generation: AtomicU64,
    env: HardwareSyncEnv,
}

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        let hw = std::thread::available_parallelism().map_or(1, |c| c.get());
        SpinBarrier {
            n: n as u64,
            count: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            env: HardwareSyncEnv {
                // Zero when the barrier was built for more waiters than
                // the host has cores: spinning then only steals cycles
                // from the waiter being waited for.
                spin_budget: if n > hw { 0 } else { SPIN_BUDGET },
            },
        }
    }

    /// One crossing of the generation protocol
    /// ([`crate::sync_protocol::barrier_wait`] — the logic the
    /// `btgs-analyze` model checker explores exhaustively) on hardware
    /// atomics with the adaptive waiter.
    fn wait(&self) {
        barrier_wait(
            &self.env,
            &self.count,
            &self.generation,
            self.n,
            &BarrierOrderings::SOUND,
        );
    }
}

/// The hardware half of the barrier seam: waiting is a hot spin, then
/// scheduler yields, and — once the yield count says the host is
/// oversubscribed (more runnable threads than cores, so the release this
/// waiter needs may be starved by the waiter itself) — exponential-backoff
/// sleeps capped near a scheduler quantum.
struct HardwareSyncEnv {
    /// Spin iterations before yielding.
    spin_budget: u32,
}

impl SyncEnv for HardwareSyncEnv {
    type Cell = AtomicU64;

    fn wait_until_changed(&self, cell: &AtomicU64, old: u64, order: Ordering) -> u64 {
        let mut spins = 0u32;
        let mut yields = 0u32;
        loop {
            // ord: the caller's ordering — the barrier passes Acquire
            // (justified in sync_protocol::barrier_wait).
            let v = cell.load(order);
            if v != old {
                return v;
            }
            if spins < self.spin_budget {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < YIELD_BUDGET {
                yields += 1;
                std::thread::yield_now();
            } else {
                let exp = (yields - YIELD_BUDGET).min(BACKOFF_CAP_EXP);
                yields = yields.saturating_add(1);
                std::thread::sleep(std::time::Duration::from_micros(1u64 << exp));
            }
        }
    }
}

/// `SimTime` as the nanosecond payload of a status atomic
/// (`SimTime::MAX` round-trips as `u64::MAX`).
#[inline]
pub(crate) fn nanos_of(t: SimTime) -> u64 {
    (t - SimTime::ZERO).as_nanos()
}

/// Inverse of [`nanos_of`].
#[inline]
fn time_of(nanos: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(nanos)
}

/// Published status of one island, read lock-free by the coordinator's
/// boundary/claim decisions and written by whichever participant last ran
/// (or injected into) the island. The barrier's acquire/release pairs
/// order every publish before the next round's reads.
struct IslandMeta {
    /// Earliest pending event, nanos; `u64::MAX` when drained.
    next_event: AtomicU64,
    /// Chain hotness instant, nanos (see [`island_status`]).
    hot_from: AtomicU64,
    /// The island staged relays since the last collect (0/1 flag, driven
    /// through the [`publish_staged`]/[`collect_staged`] protocol that
    /// `btgs-analyze` model-checks exhaustively).
    staged: AtomicU64,
}

impl IslandMeta {
    fn publish(&self, next_event: SimTime, hot_from: SimTime, staged: bool) {
        // ord: Release on all three — the coordinator reads them after the
        // round's barrier crossing, whose Acquire/Release pair already
        // orders them; the explicit Release keeps each publish
        // individually well-ordered for the batching fast path, which
        // reads `next_event` *without* an intervening barrier.
        self.next_event
            .store(nanos_of(next_event), Ordering::Release);
        self.hot_from.store(nanos_of(hot_from), Ordering::Release); // ord: see above
        if staged {
            // ord: Release via StagedOrderings::SOUND, justified in
            // sync_protocol::publish_staged.
            publish_staged(&self.staged, &StagedOrderings::SOUND);
        }
    }
}

/// Post-run island bookkeeping: `(next pending event time, chain
/// hotness, staged-anything)`. The hotness is the earliest instant chain
/// traffic could be inside the island: time zero while its conservative
/// in-flight count is non-zero, else the earliest pending chain-entry
/// arrival. It stays valid until the island next runs or receives an
/// injection — both recompute it.
fn island_status(island: &mut IslandSim) -> (SimTime, SimTime, bool) {
    let (sched, st) = island.split_mut();
    let next_event = sched.next_event_time().unwrap_or(SimTime::MAX);
    let hot_from = if st.world.chain_inflight > 0 {
        SimTime::ZERO
    } else {
        st.entry_sources
            .iter()
            .map(|&s| st.world.next_arrival[s])
            .min()
            .unwrap_or(SimTime::MAX)
    };
    (next_event, hot_from, !st.staged.is_empty())
}

/// [`island_status`] at the end of a claimed run to boundary `b`, with the
/// observability hook: under the instrumented monomorphisation the
/// island's probe records the `[previous boundary, b]` run slice, the
/// events it processed in this claim and its queue occupancy. The default
/// engine (`I = false`) compiles this down to plain [`island_status`].
fn island_status_after_run<const I: bool>(
    island: &mut IslandSim,
    b: SimTime,
) -> (SimTime, SimTime, bool) {
    if I {
        let (sched, st) = island.split_mut();
        let occ = sched.queue_occupancy();
        if let Some(probe) = st.probe.as_deref_mut() {
            probe.on_island_ran(b, occ.live as u64, occ.near as u64);
        }
    }
    island_status(island)
}

/// A staged relay parked in the coordinator's pool until the global round
/// clock reaches its handoff instant.
#[derive(Clone)]
struct PooledRelay {
    /// Injection key: handoff instant, then source piconet, then staging
    /// sequence — the deterministic total order of same-instant
    /// injections.
    at: SimTime,
    source: u16,
    seq: u64,
    relay: StagedRelay,
}

/// Pool head-room: enough for every relay in flight across one rendezvous
/// cycle at mesh scale, so the steady state never grows the buffer.
fn pool_capacity(islands: usize) -> usize {
    (islands * 8).max(1024)
}

/// Restores the pool's descending key order (minimum last, so due entries
/// pop off the back). `unsorted` is the [`EngineMutation::UnsortedStagingDrain`]
/// corpus mutation: the sort keeps `(at, source)` descending but flips the
/// staging-sequence tie-break, so same-instant same-source relays pop in
/// reverse staging order.
fn sort_pool(pool: &mut [PooledRelay], unsorted: bool) {
    if unsorted {
        // analyze: allow(unstable-sort): deliberate corpus mutation — the
        // broken tie-break is the point; the sanitizer must flag it.
        pool.sort_unstable_by(|x, y| {
            (y.at, y.source)
                .cmp(&(x.at, x.source))
                .then(x.seq.cmp(&y.seq))
        });
    } else {
        // analyze: allow(unstable-sort): the key (at, source, seq) is
        // unique per entry (seq is a per-source monotone counter), so
        // unstable ties cannot occur and the order is deterministic.
        pool.sort_unstable_by_key(|p| std::cmp::Reverse((p.at, p.source, p.seq)));
    }
}

/// Drains one island's staged relays into the pool, tagging each with the
/// island's monotone staging sequence. Returns how many were staged.
/// The sanitizer (when attached to `ctl`) checks each drained relay's
/// handoff against the phase boundary `b` — a handoff before `b` means
/// the phase stretched across a boundary this relay lands on.
fn collect_island(
    st: &mut IslandState,
    pool: &mut Vec<PooledRelay>,
    b: SimTime,
    ctl: &mut EngineCtl<'_>,
) -> u64 {
    let pic = st.pic;
    let staged = st.staged.len() as u64;
    for (k, s) in st.staged.drain(..).enumerate() {
        ctl.on_collected(b, pic, s.at);
        pool.push(PooledRelay {
            at: s.at,
            source: pic,
            seq: st.staged_seq + k as u64,
            relay: s,
        });
    }
    st.staged_seq += staged;
    staged
}

/// Injects one pooled relay into its target island. The engine only calls
/// this when the global round clock equals `relay.at`: the target island
/// has already processed every own event at that instant (it ran
/// inclusively to it, or had nothing due), so injected relays land behind
/// all same-instant local events in wheel FIFO order — an ordering that
/// holds identically across thread counts, claim orders and the
/// widening/batching toggles, which is what makes the reports
/// byte-identical across all of them.
fn inject_relay<const I: bool>(island: &mut IslandSim, relay: &StagedRelay) {
    let (sched, st) = island.split_mut();
    st.origins[relay.flow_idx as usize].push_back(relay.origin);
    // The packet is inside the target island again: it counts against the
    // island's chain backlog from the moment it is scheduled.
    st.world.chain_inflight += 1;
    // In the clean engine the clamp is the identity: the round clock only
    // reaches `relay.at` while the target island's clock is at or before
    // it. It exists so the deliberately broken corpus engines (injections
    // behind the clock) keep running for the sanitizer to report the
    // violation instead of tripping the wheel's no-past-scheduling assert.
    let at = relay.at.max(sched.now());
    let pkt = AppPacket::new(relay.pkt.seq, relay.pkt.flow, relay.pkt.size, at);
    sched.schedule_at(
        at,
        Ev::Relay {
            flow_idx: relay.flow_idx as usize,
            pkt,
        },
    );
    if I {
        if let Some(probe) = st.probe.as_deref_mut() {
            probe.on_scheduled_relay(at, relay.flow_idx, relay.pkt.seq);
        }
    }
}

/// Engine observability counters, surfaced on [`ScatternetReport`].
/// Excluded from cross-configuration byte-identity digests the way
/// `events_processed` is.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EngineCounters {
    pub(crate) phases_run: u64,
    pub(crate) barrier_rounds: u64,
    pub(crate) islands_claimed: u64,
    pub(crate) relays_staged: u64,
    pub(crate) widening_stretches: u64,
    pub(crate) islands_skipped_idle: u64,
    pub(crate) relays_injected: u64,
}

/// The engine toggles (see [`ScatternetSim::with_phase_widening`] and
/// [`ScatternetSim::with_phase_batching`]). Reports are byte-identical
/// across all four combinations.
#[derive(Clone, Copy)]
struct EngineMode {
    widening: bool,
    batching: bool,
}

/// Test-only engine corruption state, driving one [`EngineMutation`]
/// through the round loop (the seeded-mutation corpus the sanitizer and
/// bisector are proven against).
pub(crate) struct MutationState {
    which: EngineMutation,
    /// [`EngineMutation::RelayBehindClock`]: the withheld relay, released
    /// one boundary late.
    held: Option<PooledRelay>,
    /// One-shot latch for the hold/drop/duplicate corruptions.
    fired: bool,
}

impl MutationState {
    pub(crate) fn new(which: EngineMutation) -> MutationState {
        MutationState {
            which,
            held: None,
            fired: false,
        }
    }
}

/// Per-run instrumentation control handed to the engine loops: the
/// sanitizer (sanitized runs), the seeded mutation (corpus tests) and the
/// coordinator-side observability recorder (observed runs). Default runs
/// carry `None` in every field; every hook is a per-round or
/// per-injection `Option` branch, never per event — the per-event seam is
/// the `I` const generic on [`island_handle`].
struct EngineCtl<'a> {
    san: Option<&'a mut EngineSanitizer>,
    muts: Option<&'a mut MutationState>,
    obs: Option<&'a mut CoordObs>,
}

impl EngineCtl<'_> {
    /// `true` once the sanitizer recorded any finding: the engine halts at
    /// the end of the current round instead of cascading.
    fn tripped(&self) -> bool {
        self.san.as_deref().is_some_and(EngineSanitizer::tripped)
    }

    /// [`EngineMutation::WideningPastHotBoundary`]: every island reads as
    /// never-hot, so the widened walk runs straight past boundaries that
    /// hot islands' staged relays land on.
    fn hot_blind(&self) -> bool {
        self.muts
            .as_deref()
            .is_some_and(|m| m.which == EngineMutation::WideningPastHotBoundary)
    }

    /// [`EngineMutation::UnsortedStagingDrain`]: break the pool sort's
    /// staging-sequence tie-break.
    fn unsorted(&self) -> bool {
        self.muts
            .as_deref()
            .is_some_and(|m| m.which == EngineMutation::UnsortedStagingDrain)
    }

    /// [`EngineMutation::BoundaryOffByOne`]: `true` when boundary `b` is a
    /// skippable calendar start — never a pending-injection, checkpoint or
    /// horizon cap, so the mutated walk skips sync points without
    /// deadlocking the round loop or scheduling injections it already owes.
    fn skip_boundary(
        &self,
        b: SimTime,
        checkpoint: SimTime,
        probed: bool,
        horizon: SimTime,
        pool_min: Option<SimTime>,
    ) -> bool {
        self.muts
            .as_deref()
            .is_some_and(|m| m.which == EngineMutation::BoundaryOffByOne)
            && b < horizon
            && pool_min != Some(b)
            && (probed || b != checkpoint)
    }

    /// [`EngineMutation::DroppedRelay`] / [`EngineMutation::DuplicatedRelay`]:
    /// corrupt the freshly sorted pool, once — after the sanitizer counted
    /// the collected relays, so conservation is checked against the true
    /// staging counts.
    fn corrupt_pool(&mut self, pool: &mut Vec<PooledRelay>) {
        let Some(m) = self.muts.as_deref_mut() else {
            return;
        };
        if m.fired || pool.is_empty() {
            return;
        }
        match m.which {
            EngineMutation::DroppedRelay => {
                m.fired = true;
                pool.pop();
            }
            EngineMutation::DuplicatedRelay => {
                m.fired = true;
                let dup = pool.last().expect("pool checked non-empty").clone();
                pool.push(dup);
            }
            _ => {}
        }
    }

    /// [`EngineMutation::RelayBehindClock`]: withholds the first due relay
    /// from injection (returns `None`; the relay is parked in the
    /// mutation state).
    fn intercept(&mut self, p: PooledRelay) -> Option<PooledRelay> {
        let Some(m) = self.muts.as_deref_mut() else {
            return Some(p);
        };
        if m.which == EngineMutation::RelayBehindClock && !m.fired {
            m.fired = true;
            m.held = Some(p);
            return None;
        }
        Some(p)
    }

    /// [`EngineMutation::RelayBehindClock`]: hands the withheld relay back
    /// at the first boundary past its handoff — an injection behind the
    /// target island's clock.
    fn release_due(&mut self, t: SimTime) -> Option<PooledRelay> {
        let m = self.muts.as_deref_mut()?;
        if m.held.as_ref().is_some_and(|h| h.at < t) {
            m.held.take()
        } else {
            None
        }
    }

    /// Forwards one collected relay to the sanitizer's widening-boundary
    /// check (see [`collect_island`]).
    fn on_collected(&mut self, b: SimTime, source: u16, at: SimTime) {
        if let Some(san) = self.san.as_deref_mut() {
            san.on_collected(b, source, at);
        }
    }

    /// Runs the sanitizer's injection checks (total order, duplication,
    /// lookahead safety against the target island's clock). `false` means
    /// the injection would land behind the clock — the caller withholds
    /// the schedule (the run is halting at this finding anyway).
    fn check_injection(
        &mut self,
        key: (SimTime, u16, u64),
        target: (u16, u32),
        target_now: SimTime,
    ) -> bool {
        match self.san.as_deref_mut() {
            Some(san) => san.check_injection(key, target, target_now),
            None => true,
        }
    }

    /// Records one closed phase on the coordinator observability recorder:
    /// the `[t, b]` slice, the claim/skip split, the post-collect relay
    /// pool occupancy and whether adaptive widening stretched the phase
    /// past a calendar start. Every argument is derived from
    /// thread-count-invariant engine state, so the recorded trace is
    /// byte-identical across 1/2/4 threads and claim orders.
    fn on_phase(
        &mut self,
        t: SimTime,
        b: SimTime,
        active: u64,
        skipped: u64,
        pool_len: usize,
        stretched: bool,
    ) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_phase(t, b, active, skipped, pool_len, stretched);
        }
    }

    /// Records one pooled-relay injection (target island and staging
    /// sequence) on the coordinator observability recorder.
    fn on_injected(&mut self, t: SimTime, target: u16, seq: u64) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_injected(t, target, seq);
        }
    }

    /// Reports every relay still pooled at run end to the sanitizer's
    /// conservation reconciliation (legitimate for handoffs past the
    /// horizon). A relay still *held* by the behind-clock mutation is
    /// deliberately not reported: a never-released hold must trip the
    /// conservation check.
    fn note_leftovers(&mut self, pool: &[PooledRelay]) {
        if let Some(san) = self.san.as_deref_mut() {
            for p in pool {
                san.on_leftover((p.relay.pic, p.relay.flow_idx));
            }
        }
    }
}

/// Rounds with at most this many active islands are run by the
/// coordinator alone instead of being dispatched through two barrier
/// crossings that wake every worker.
const SOLO_ROUND_MAX: usize = 2;

/// The parallel claim loop: every participant (workers and the
/// coordinator) claims the next position off the shared cursor; claimed
/// islands run to `b` and publish their status. With batching, an island
/// with no event due by `b` is skipped without ever taking its lock.
fn claim_islands<const I: bool>(
    cells: &[Mutex<IslandSim>],
    meta: &[IslandMeta],
    order: &[usize],
    cursor: &AtomicU64,
    b: SimTime,
    batching: bool,
) {
    let b_nanos = nanos_of(b);
    // ord: Relaxed — RMW atomicity alone partitions the claims; justified
    // in sync_protocol::claim_next and model-checked by btgs-analyze.
    while let Some(i) = claim_next(cursor, order.len() as u64, Ordering::Relaxed) {
        let idx = order[i as usize];
        // ord: Acquire — pairs with the island's Release publish so a
        // skip decision is made against the island's completed status.
        if batching && meta[idx].next_event.load(Ordering::Acquire) > b_nanos {
            continue;
        }
        let mut island = cells[idx]
            .lock()
            .expect("island workers do not panic while holding the lock");
        island.run_until(b, island_handle::<I>);
        let (ne, hf, staged) = island_status_after_run::<I>(&mut island, b);
        drop(island);
        meta[idx].publish(ne, hf, staged);
    }
}

/// The sequential engine: the parallel algorithm minus every lock, atomic
/// and barrier — identical boundary sequence, claim rule and injection
/// order, so its reports are byte-identical to any parallel run by
/// construction.
#[allow(clippy::too_many_arguments)]
fn run_phases_seq<const I: bool>(
    islands: &mut [IslandSim],
    order: &[usize],
    groups: &[SyncPoint],
    checkpoint: SimTime,
    horizon: SimTime,
    probe: &mut dyn FnMut(),
    mode: EngineMode,
    ctl: &mut EngineCtl<'_>,
) -> EngineCounters {
    let n = islands.len();
    let mut counters = EngineCounters::default();
    let mut pool: Vec<PooledRelay> = Vec::with_capacity(pool_capacity(n));
    let mut next_event: Vec<SimTime> = Vec::with_capacity(n);
    let mut hot: Vec<SimTime> = Vec::with_capacity(n);
    let mut staged: Vec<bool> = vec![false; n];
    for island in islands.iter_mut() {
        let (ne, hf, _) = island_status(island);
        next_event.push(ne);
        hot.push(hf);
    }

    let mut t = SimTime::ZERO;
    let mut probed = false;
    loop {
        let pool_min = pool.last().map(|p| p.at);
        let blind = ctl.hot_blind();
        let hot_of = |i: usize| if blind { SimTime::MAX } else { hot[i] };
        let mut b = next_boundary(
            t,
            checkpoint,
            probed,
            horizon,
            pool_min,
            groups,
            mode.widening,
            hot_of,
        );
        if ctl.skip_boundary(b, checkpoint, probed, horizon, pool_min) {
            b = next_boundary(
                b,
                checkpoint,
                probed,
                horizon,
                pool_min,
                groups,
                mode.widening,
                hot_of,
            );
        }
        counters.phases_run += 1;
        let stretched = mode.widening && earliest_calendar_start(t, groups) < b;
        counters.widening_stretches += u64::from(stretched);
        // The claim rule (`next_event <= b`) reads the same published
        // values the loop below skips on, so `active` equals the number
        // of islands actually run — the identical accounting the parallel
        // engine derives from the island meta.
        let active = if mode.batching {
            order.iter().filter(|&&idx| next_event[idx] <= b).count()
        } else {
            order.len()
        };
        counters.islands_claimed += active as u64;
        counters.islands_skipped_idle += (order.len() - active) as u64;
        for &idx in order {
            if mode.batching && next_event[idx] > b {
                continue;
            }
            let island = &mut islands[idx];
            island.run_until(b, island_handle::<I>);
            let (ne, hf, did_stage) = island_status_after_run::<I>(island, b);
            next_event[idx] = ne;
            hot[idx] = hf;
            staged[idx] |= did_stage;
        }
        for (idx, flag) in staged.iter_mut().enumerate() {
            if mode.batching && !*flag {
                continue;
            }
            *flag = false;
            counters.relays_staged += collect_island(islands[idx].state_mut(), &mut pool, b, ctl);
        }
        sort_pool(&mut pool, ctl.unsorted());
        ctl.corrupt_pool(&mut pool);
        ctl.on_phase(
            t,
            b,
            active as u64,
            (order.len() - active) as u64,
            pool.len(),
            stretched,
        );
        if !probed && b >= checkpoint {
            probe();
            probed = true;
        }
        t = b;
        if let Some(h) = ctl.release_due(t) {
            pool.push(h);
            sort_pool(&mut pool, ctl.unsorted());
        }
        // Inject every relay due now; it becomes live in the next round.
        // In the clean engine a due relay's handoff is exactly `t` (the
        // pending-injection cap makes every handoff a boundary); `<=`
        // keeps corpus-mutated engines draining late relays instead of
        // carrying them into next_boundary's `p > t` invariant. At the
        // horizon this is the drain: targets re-run to the horizon so
        // relays landing exactly on it still fire, and later handoffs
        // (which can never fire) are left in the pool.
        let mut due = false;
        while pool.last().is_some_and(|p| p.at <= t) {
            let p = pool.pop().expect("just peeked");
            let Some(p) = ctl.intercept(p) else {
                continue;
            };
            let idx = p.relay.pic as usize;
            let island = &mut islands[idx];
            let proceed = !I || {
                let now = island.split_mut().0.now();
                ctl.check_injection(
                    (p.at, p.source, p.seq),
                    (p.relay.pic, p.relay.flow_idx),
                    now,
                )
            };
            if proceed {
                inject_relay::<I>(island, &p.relay);
                counters.relays_injected += 1;
                ctl.on_injected(t, p.relay.pic, p.seq);
            }
            next_event[idx] = next_event[idx].min(t);
            hot[idx] = SimTime::ZERO;
            due = true;
        }
        if (t >= horizon && !due) || ctl.tripped() {
            break;
        }
    }
    probe();
    ctl.note_leftovers(&pool);
    counters
}

/// The parallel engine: `threads` participants (the coordinator included)
/// claim islands off a shared cursor each round; island status is
/// published through per-island atomics so the coordinator's boundary,
/// claim and collect decisions never take an idle island's lock. Rounds
/// with at most [`SOLO_ROUND_MAX`] active islands are run by the
/// coordinator alone — the workers stay parked at the barrier and the
/// round costs zero crossings.
#[allow(clippy::too_many_arguments)]
fn run_phases_par<const I: bool>(
    cells: &[Mutex<IslandSim>],
    order: &[usize],
    groups: &[SyncPoint],
    checkpoint: SimTime,
    horizon: SimTime,
    probe: &mut dyn FnMut(),
    threads: usize,
    mode: EngineMode,
    ctl: &mut EngineCtl<'_>,
) -> EngineCounters {
    let n = cells.len();
    let mut counters = EngineCounters::default();
    let mut pool: Vec<PooledRelay> = Vec::with_capacity(pool_capacity(n));
    let meta: Vec<IslandMeta> = cells
        .iter()
        .map(|cell| {
            let mut island = cell.lock().expect("no poisoned islands");
            let (ne, hf, _) = island_status(&mut island);
            IslandMeta {
                next_event: AtomicU64::new(nanos_of(ne)),
                hot_from: AtomicU64::new(nanos_of(hf)),
                staged: AtomicU64::new(0),
            }
        })
        .collect();
    let barrier = SpinBarrier::new(threads);
    let cursor = AtomicU64::new(0);
    let bound = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 1..threads {
            let (barrier, cursor, bound, stop) = (&barrier, &cursor, &bound, &stop);
            let meta = &meta;
            scope.spawn(move || loop {
                barrier.wait();
                // ord: Acquire — pairs with the coordinator's Release
                // store before its barrier crossing; the crossing itself
                // already orders it, the explicit pair keeps the flag
                // self-contained.
                if stop.load(Ordering::Acquire) {
                    return;
                }
                // ord: Acquire — pairs with the coordinator's Release
                // publish of the round bound (same reasoning as `stop`).
                let b = time_of(bound.load(Ordering::Acquire));
                claim_islands::<I>(cells, meta, order, cursor, b, mode.batching);
                barrier.wait();
            });
        }

        let mut t = SimTime::ZERO;
        let mut probed = false;
        loop {
            let pool_min = pool.last().map(|p| p.at);
            let blind = ctl.hot_blind();
            let hot_of = |i: usize| {
                if blind {
                    SimTime::MAX
                } else {
                    // ord: Acquire — pairs with the islands' Release
                    // publish; the inter-round barrier crossing already
                    // ordered it.
                    time_of(meta[i].hot_from.load(Ordering::Acquire))
                }
            };
            let mut b = next_boundary(
                t,
                checkpoint,
                probed,
                horizon,
                pool_min,
                groups,
                mode.widening,
                hot_of,
            );
            if ctl.skip_boundary(b, checkpoint, probed, horizon, pool_min) {
                b = next_boundary(
                    b,
                    checkpoint,
                    probed,
                    horizon,
                    pool_min,
                    groups,
                    mode.widening,
                    hot_of,
                );
            }
            counters.phases_run += 1;
            let stretched = mode.widening && earliest_calendar_start(t, groups) < b;
            counters.widening_stretches += u64::from(stretched);
            let b_nanos = nanos_of(b);
            let active = if mode.batching {
                order
                    .iter()
                    // ord: Acquire — pairs with the islands' Release
                    // publish (ordered since the last barrier crossing).
                    .filter(|&&idx| meta[idx].next_event.load(Ordering::Acquire) <= b_nanos)
                    .count()
            } else {
                order.len()
            };
            counters.islands_claimed += active as u64;
            counters.islands_skipped_idle += (order.len() - active) as u64;
            if mode.batching && active <= SOLO_ROUND_MAX {
                // Coordinator-solo round: cheaper than two barrier
                // crossings when almost everything is idle.
                for &idx in order {
                    // ord: Acquire — same publish pairing as the `active`
                    // count above; coordinator-solo rounds take no lock on
                    // skipped islands.
                    if meta[idx].next_event.load(Ordering::Acquire) > b_nanos {
                        continue;
                    }
                    let mut island = cells[idx].lock().expect("no poisoned islands");
                    island.run_until(b, island_handle::<I>);
                    let (ne, hf, did_stage) = island_status_after_run::<I>(&mut island, b);
                    drop(island);
                    meta[idx].publish(ne, hf, did_stage);
                }
            } else {
                counters.barrier_rounds += 1;
                // ord: Release on both — published to the workers across
                // the barrier crossing below; the crossing's
                // Acquire/Release pair is what actually carries them, the
                // explicit Release keeps each store individually sound.
                bound.store(b_nanos, Ordering::Release);
                cursor.store(0, Ordering::Release); // ord: see above
                barrier.wait();
                claim_islands::<I>(cells, &meta, order, &cursor, b, mode.batching);
                barrier.wait();
            }
            for (idx, m) in meta.iter().enumerate() {
                // ord: Acquire/Relaxed via StagedOrderings::SOUND — the
                // test-and-clear protocol justified in
                // sync_protocol::collect_staged and model-checked by the
                // btgs-analyze staged-publish scenario.
                if mode.batching && !collect_staged(&m.staged, &StagedOrderings::SOUND) {
                    continue;
                }
                let mut island = cells[idx].lock().expect("no poisoned islands");
                counters.relays_staged += collect_island(island.state_mut(), &mut pool, b, ctl);
            }
            sort_pool(&mut pool, ctl.unsorted());
            ctl.corrupt_pool(&mut pool);
            ctl.on_phase(
                t,
                b,
                active as u64,
                (order.len() - active) as u64,
                pool.len(),
                stretched,
            );
            if !probed && b >= checkpoint {
                probe();
                probed = true;
            }
            t = b;
            if let Some(h) = ctl.release_due(t) {
                pool.push(h);
                sort_pool(&mut pool, ctl.unsorted());
            }
            let mut due = false;
            while pool.last().is_some_and(|p| p.at <= t) {
                let p = pool.pop().expect("just peeked");
                let Some(p) = ctl.intercept(p) else {
                    continue;
                };
                let idx = p.relay.pic as usize;
                let mut island = cells[idx].lock().expect("no poisoned islands");
                let proceed = !I || {
                    let now = island.split_mut().0.now();
                    ctl.check_injection(
                        (p.at, p.source, p.seq),
                        (p.relay.pic, p.relay.flow_idx),
                        now,
                    )
                };
                if proceed {
                    inject_relay::<I>(&mut island, &p.relay);
                    counters.relays_injected += 1;
                    ctl.on_injected(t, p.relay.pic, p.seq);
                }
                drop(island);
                // ord: Acquire/Release — coordinator-only read-modify of
                // the island's published status between rounds; the next
                // barrier crossing republishes it to the workers.
                let ne = meta[idx].next_event.load(Ordering::Acquire);
                meta[idx]
                    .next_event
                    .store(ne.min(nanos_of(t)), Ordering::Release); // ord: see above
                meta[idx].hot_from.store(0, Ordering::Release); // ord: see above
                due = true;
            }
            if (t >= horizon && !due) || ctl.tripped() {
                break;
            }
        }
        probe();
        ctl.note_leftovers(&pool);

        // ord: Release — carried to the workers by the final barrier
        // crossing; they read it with Acquire right after.
        stop.store(true, Ordering::Release);
        barrier.wait();
    });
    counters
}

/// Measurements of one cross-piconet chain.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// The hop flows, in path order.
    pub hops: Vec<FlowId>,
    /// Packets relayed onto a further hop within the measurement window
    /// (counted once per hop crossed).
    pub relayed_packets: u64,
    /// Packets that completed the final hop and originated within the
    /// measurement window (always equal to `e2e.count()`).
    pub delivered_packets: u64,
    /// End-to-end delay: first-hop arrival to final-hop delivery. Equals
    /// the sum of per-hop queueing delays plus the bridge residence times
    /// (master relays are immediate).
    pub e2e: DelayStats,
    /// Bridge residence: delivery at the bridge to the bridge's next
    /// appearance in the target piconet, per bridge crossing.
    pub residence: DelayStats,
}

/// The complete result of one scatternet run.
#[derive(Clone, Debug)]
pub struct ScatternetReport {
    /// Per-piconet run reports (per-hop delay statistics live here, under
    /// the hop flows' ids). Each report's `events_processed` counts the
    /// events of that piconet's own island engine.
    pub piconets: Vec<RunReport>,
    /// Per-chain end-to-end measurements.
    pub chains: Vec<ChainReport>,
    /// Total events processed across all island engines. Identical across
    /// thread counts and engine toggles — the same events fire either way.
    pub events_processed: u64,
    /// Boundary rounds the phased loop stepped through. Engine
    /// observability, excluded from cross-configuration byte-identity
    /// digests the way `events_processed` is (so are the three counters
    /// below).
    pub phases_run: u64,
    /// Rounds dispatched through the worker barrier (two crossings each);
    /// zero for single-threaded runs and coordinator-solo rounds.
    pub barrier_rounds: u64,
    /// Islands actually claimed and run, summed over all rounds —
    /// idle-island skipping makes this far less than
    /// `phases_run × piconets`.
    pub islands_claimed: u64,
    /// Cross-island relays staged through the coordinator pool.
    pub relays_staged: u64,
    /// Phases whose boundary was widened past at least one calendar
    /// window start because no source island could hold chain traffic.
    pub widening_stretches: u64,
    /// Idle islands skipped without a claim (nothing due by the
    /// boundary), summed over all rounds. Zero with batching off.
    pub islands_skipped_idle: u64,
    /// Pooled relays actually injected into their target islands. Clean
    /// runs conserve relays: `relays_staged` equals `relays_injected`
    /// plus the relays still pooled at run end (handoffs past the
    /// horizon, reported by the sanitizer as `relays_leftover`).
    pub relays_injected: u64,
}

impl ScatternetReport {
    /// The run report of one piconet.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn piconet(&self, pic: PiconetId) -> &RunReport {
        &self.piconets[pic.index()]
    }

    /// Aggregate delivered throughput over all piconets, in kbit/s.
    pub fn total_throughput_kbps(&self) -> f64 {
        self.piconets
            .iter()
            .map(RunReport::total_throughput_kbps)
            .sum()
    }
}

/// A configured scatternet simulation, ready to run.
///
/// Owns one island simulator per piconet; see the [module docs](self) for
/// the phased conservative execution and the relay semantics.
pub struct ScatternetSim {
    islands: Vec<IslandSim>,
    arena: ShardedFlowArena,
    /// `relay_fed[pic][flow_idx]`: fed by relaying, exempt from the
    /// one-source-per-flow rule.
    relay_fed: Vec<Vec<bool>>,
    /// The chains' hop lists, for report assembly.
    chain_hops: Vec<Vec<FlowId>>,
    /// The boundary calendar: every presence window that is the target of
    /// a bridge-crossing route, grouped by coincident `(phase, cycle)`
    /// with the source islands that can feed it.
    sync_points: Vec<SyncPoint>,
    threads: usize,
    shuffle_seed: Option<u64>,
    widening: bool,
    batching: bool,
    /// Test-only seeded engine corruption (see [`EngineMutation`]); `None`
    /// for every supported configuration.
    mutation: Option<EngineMutation>,
}

/// What [`ScatternetSim::run_inner`] hands back to its public wrappers:
/// the report (withheld when the sanitizer halted the run), the sanitizer
/// findings, the bisector event trace, and the observability outputs —
/// each populated only when requested.
struct RunInnerOutput {
    report: Option<ScatternetReport>,
    sanitizer: Option<SanitizerReport>,
    trace: Option<RunTrace>,
    observed: Option<crate::telemetry::ObservedParts>,
}

impl ScatternetSim {
    /// Builds a scatternet simulation.
    ///
    /// `pollers` and `channels` are per piconet, in [`PiconetId`] order.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule: per-piconet configuration errors,
    /// bridge windows that do not fit their cycle, bridges naming unknown
    /// piconets or doubling up on a slave, chains whose hops are unknown,
    /// shared, or not connected device-to-device.
    pub fn new(
        config: ScatternetConfig,
        pollers: Vec<Box<dyn Poller>>,
        channels: Vec<Box<dyn ChannelModel>>,
    ) -> Result<ScatternetSim, PiconetError> {
        let n = config.piconets.len();
        if n == 0 {
            return Err(PiconetError(
                "a scatternet needs at least one piconet".into(),
            ));
        }
        if n > u16::MAX as usize {
            return Err(PiconetError(format!(
                "{n} piconets exceed the 65535 the 16-bit PiconetId can name"
            )));
        }
        if pollers.len() != n || channels.len() != n {
            return Err(PiconetError(format!(
                "{n} piconets need exactly {n} pollers and {n} channel models"
            )));
        }

        // Inject the bridge presence windows into each piconet's mask.
        let mut piconets = config.piconets.clone();
        let mut bridge_windows: Vec<(PresenceWindow, PresenceWindow)> =
            Vec::with_capacity(config.bridges.len());
        for b in &config.bridges {
            if b.upstream.piconet.index() >= n || b.downstream.piconet.index() >= n {
                return Err(PiconetError(format!(
                    "bridge {} -> {} names an unknown piconet",
                    b.upstream, b.downstream
                )));
            }
            if b.upstream.piconet == b.downstream.piconet {
                return Err(PiconetError(format!(
                    "bridge {} -> {} must connect two distinct piconets",
                    b.upstream, b.downstream
                )));
            }
            let (up, down) = b.windows()?;
            piconets[b.upstream.piconet.index()]
                .presence
                .set(b.upstream.slave, up)?;
            piconets[b.downstream.piconet.index()]
                .presence
                .set(b.downstream.slave, down)?;
            bridge_windows.push((up, down));
        }

        // Build the per-piconet worlds and the sharded arena over their
        // dense flow tables.
        let mut worlds = Vec::with_capacity(n);
        let mut chans = channels;
        let mut polls = pollers;
        for cfg in piconets.iter().rev() {
            // Pop from the back so ownership moves without index juggling.
            let poller = polls.pop().expect("length checked");
            let channel = chans.pop().expect("length checked");
            worlds.push(World::build(cfg, poller, channel)?);
        }
        worlds.reverse();
        let arena = ShardedFlowArena::new(worlds.iter().map(|w| w.table.clone()).collect())
            .map_err(PiconetError)?;

        // Resolve the chains into relay routes, and record every
        // route-target presence window as a sync point.
        let mut routes: Vec<Vec<Option<HopNext>>> =
            worlds.iter().map(|w| vec![None; w.table.len()]).collect();
        let mut relay_fed: Vec<Vec<bool>> =
            worlds.iter().map(|w| vec![false; w.table.len()]).collect();
        let mut sync_points: Vec<SyncPoint> = Vec::new();
        let mut chain_hops = Vec::with_capacity(config.chains.len());
        for (ci, chain) in config.chains.iter().enumerate() {
            if chain.hops.len() < 2 {
                return Err(PiconetError(format!(
                    "chain {ci} needs at least two hops (a single-hop chain is just a flow)"
                )));
            }
            if !chain.hop_intervals.is_empty() && chain.hop_intervals.len() != chain.hops.len() {
                return Err(PiconetError(format!(
                    "chain {ci} records {} granted intervals for {} hops",
                    chain.hop_intervals.len(),
                    chain.hops.len()
                )));
            }
            let resolved: Vec<(PiconetId, FlowIdx)> = chain
                .hops
                .iter()
                .map(|id| {
                    arena
                        .route(*id)
                        .ok_or_else(|| PiconetError(format!("chain {ci}: unknown hop flow {id}")))
                })
                .collect::<Result<_, _>>()?;
            // The first hop is the chain's entry: packets ingressing it
            // join the entry island's conservative chain backlog.
            let (fpic, fidx) = resolved[0];
            worlds[fpic.index()].chain_entry[fidx.get()] = true;
            for (k, window) in resolved.windows(2).enumerate() {
                let (apic, aidx) = window[0];
                let (bpic, bidx) = window[1];
                let a = arena.shard(apic).spec(aidx);
                let b = arena.shard(bpic).spec(bidx);
                let bridge_window = if apic == bpic {
                    // Master relay: hop k terminates at the master, hop k+1
                    // originates there.
                    if !a.direction.is_uplink() || !b.direction.is_downlink() {
                        return Err(PiconetError(format!(
                            "chain {ci}: hops {} -> {} stay in {apic} but do not relay \
                             through the master (uplink then downlink required)",
                            a.id, b.id
                        )));
                    }
                    None
                } else {
                    // Bridge relay: hop k delivers to the bridge slave, hop
                    // k+1 transmits from its identity in the next piconet.
                    if !a.direction.is_downlink() || !b.direction.is_uplink() {
                        return Err(PiconetError(format!(
                            "chain {ci}: hops {} -> {} cross piconets but do not relay \
                             through a bridge slave (downlink then uplink required)",
                            a.id, b.id
                        )));
                    }
                    // A bridge serves crossings in both directions: the
                    // handoff waits for the bridge's window in whichever
                    // piconet the packet continues into.
                    let from = ScopedSlave::new(apic, a.slave);
                    let into = ScopedSlave::new(bpic, b.slave);
                    let (window, phase, cycle) = config
                        .bridges
                        .iter()
                        .zip(&bridge_windows)
                        .find_map(|(br, (up, down))| {
                            if br.upstream == from && br.downstream == into {
                                Some((*down, br.dwell_upstream, br.cycle))
                            } else if br.upstream == into && br.downstream == from {
                                Some((*up, SimDuration::ZERO, br.cycle))
                            } else {
                                None
                            }
                        })
                        .ok_or_else(|| {
                            PiconetError(format!(
                                "chain {ci}: no bridge connects {apic}/{} to {bpic}/{}",
                                a.slave, b.slave
                            ))
                        })?;
                    push_sync_point(&mut sync_points, phase, cycle, apic.0);
                    Some(window)
                };
                let slot = &mut routes[apic.index()][aidx.get()];
                if slot.is_some() {
                    return Err(PiconetError(format!(
                        "hop flow {} is shared by two chain positions",
                        a.id
                    )));
                }
                *slot = Some(HopNext::Forward {
                    chain: ci as u32,
                    hop: k as u16,
                    pic: bpic.0,
                    flow_idx: bidx.0,
                    flow: b.id,
                    window: bridge_window,
                });
                relay_fed[bpic.index()][bidx.get()] = true;
            }
            let (lpic, lidx) = *resolved.last().expect("at least two hops");
            let slot = &mut routes[lpic.index()][lidx.get()];
            if slot.is_some() {
                return Err(PiconetError(format!(
                    "hop flow {} is shared by two chain positions",
                    arena.shard(lpic).id(lidx)
                )));
            }
            *slot = Some(HopNext::Terminal { chain: ci as u32 });

            chain_hops.push(chain.hops.clone());
        }

        // Arm the capture flags and pre-size the relay machinery.
        for (pic, picroutes) in routes.iter().enumerate() {
            for (idx, r) in picroutes.iter().enumerate() {
                if r.is_some() {
                    worlds[pic].capture[idx] = true;
                    worlds[pic].reserve_relay(idx, 64);
                }
            }
            for (idx, fed) in relay_fed[pic].iter().enumerate() {
                if *fed {
                    worlds[pic].reserve_relay(idx, 64);
                }
            }
        }

        let warmup = piconets
            .iter()
            .map(|c| SimTime::ZERO + c.warmup)
            .max()
            .expect("at least one piconet");

        // Assemble the islands: per-piconet stat shares sized so the
        // steady state stays allocation-free.
        let num_chains = chain_hops.len();
        let islands = worlds
            .into_iter()
            .zip(routes)
            .enumerate()
            .map(|(pic, (world, routes))| {
                let origins = relay_fed[pic]
                    .iter()
                    .map(|fed| {
                        if *fed {
                            VecDeque::with_capacity(1024)
                        } else {
                            VecDeque::new()
                        }
                    })
                    .collect();
                let mut chain_stats: Vec<ChainLocal> = (0..num_chains)
                    .map(|_| ChainLocal {
                        relayed: 0,
                        delivered: 0,
                        e2e: DelayStats::new(),
                        residence: DelayStats::new(),
                    })
                    .collect();
                for r in routes.iter().flatten() {
                    match r {
                        HopNext::Terminal { chain } => {
                            chain_stats[*chain as usize].e2e.reserve(4096);
                        }
                        HopNext::Forward { chain, window, .. } if window.is_some() => {
                            chain_stats[*chain as usize].residence.reserve(4096);
                        }
                        HopNext::Forward { .. } => {}
                    }
                }
                let state = IslandState {
                    world,
                    pic: pic as u16,
                    routes,
                    origins,
                    staged: Vec::with_capacity(128),
                    staged_seq: 0,
                    entry_sources: Vec::new(),
                    warmup,
                    chain_stats,
                    probe: None,
                };
                Simulator::with_queue(state, EventQueue::new())
            })
            .collect();

        Ok(ScatternetSim {
            islands,
            arena,
            relay_fed,
            chain_hops,
            sync_points,
            threads: 1,
            shuffle_seed: None,
            widening: true,
            batching: true,
            mutation: None,
        })
    }

    /// Sets the number of threads advancing islands in parallel (builder
    /// style). Clamped to at least 1 and at most the piconet count at run
    /// time; reports are byte-identical across thread counts.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ScatternetSim {
        self.threads = threads.max(1);
        self
    }

    /// Permutes the island visit order with a deterministic
    /// [`DetRng`]-driven shuffle (builder style). The reports do not
    /// depend on the visit order; this exists so equivalence tests can
    /// prove it.
    #[must_use]
    pub fn with_island_shuffle(mut self, seed: u64) -> ScatternetSim {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Enables or disables adaptive phase widening (builder style; default
    /// on). When on, a calendar group's window starts are skipped as
    /// boundaries while no source island can hold chain traffic; when off,
    /// every calendar start is a boundary. Reports are byte-identical
    /// either way — only the round count changes.
    #[must_use]
    pub fn with_phase_widening(mut self, widening: bool) -> ScatternetSim {
        self.widening = widening;
        self
    }

    /// Enables or disables phase batching and idle-island skipping
    /// (builder style; default on). When on, an island with no event due
    /// by the boundary is never claimed, locked or drained, and
    /// small-active-set rounds run on the coordinator without barrier
    /// crossings; when off, every island runs every round. Reports are
    /// byte-identical either way.
    #[must_use]
    pub fn with_phase_batching(mut self, batching: bool) -> ScatternetSim {
        self.batching = batching;
        self
    }

    /// The sharded flow arena (global id routing) of this scatternet.
    pub fn arena(&self) -> &ShardedFlowArena {
        &self.arena
    }

    /// Registers the traffic source of one flow, resolved through the
    /// global id space.
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown, already has a source, or
    /// names a relay-fed hop (those are fed by the previous hop).
    pub fn add_source(&mut self, source: Box<dyn Source>) -> Result<(), PiconetError> {
        let id = source.flow();
        if let Some((pic, idx)) = self.arena.route(id) {
            if self.relay_fed[pic.index()][idx.get()] {
                return Err(PiconetError(format!(
                    "flow {id} is relay-fed; it cannot also have a source"
                )));
            }
            return self.islands[pic.index()]
                .state_mut()
                .world
                .add_source(source);
        }
        // SCO voice flows are not in the arena: route to the world whose
        // SCO binding claims the id.
        match self
            .islands
            .iter_mut()
            .position(|i| i.state_mut().world.has_sco_voice(id))
        {
            Some(pic) => self.islands[pic].state_mut().world.add_source(source),
            None => Err(PiconetError(format!("no flow {id} configured"))),
        }
    }

    /// Runs the scatternet until `horizon` and returns the report.
    /// (Consuming `self` makes a second run unrepresentable.)
    ///
    /// # Errors
    ///
    /// Returns an error if a non-relay-fed flow lacks a source or a
    /// warm-up reaches past the horizon.
    pub fn run(self, horizon: SimTime) -> Result<ScatternetReport, PiconetError> {
        self.run_probed(horizon, horizon, &mut || {})
    }

    /// Runs to `horizon`, invoking `probe` when the clock reaches
    /// `checkpoint` and once more when the run loop finishes (before report
    /// assembly) — the same bracketing hook as
    /// [`PiconetSim::run_probed`](crate::PiconetSim::run_probed), used by
    /// the zero-allocation gate. The probe always fires at a phase
    /// boundary, with every island at the same instant and no worker
    /// holding a lock.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`].
    pub fn run_probed(
        self,
        checkpoint: SimTime,
        horizon: SimTime,
        probe: &mut dyn FnMut(),
    ) -> Result<ScatternetReport, PiconetError> {
        let out = self.run_inner(checkpoint, horizon, probe, false, None, None)?;
        Ok(out
            .report
            .expect("uninstrumented runs always carry a report"))
    }

    /// Runs to `horizon` with the observability layer enabled: a
    /// deterministic structured trace (fixed-capacity per-track ring
    /// buffers, sim-time keyed — byte-identical across thread counts and
    /// claim orders) plus the pre-registered engine telemetry
    /// ([`TelemetryReport`]). Plain [`run`](ScatternetSim::run) compiles
    /// all of it out through the same const-generic seam as the
    /// sanitizer.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`].
    pub fn run_observed(
        self,
        horizon: SimTime,
        cfg: ObsConfig,
    ) -> Result<ObservedRun, PiconetError> {
        self.run_observed_probed(horizon, horizon, &mut || {}, cfg, Vec::new())
    }

    /// [`run_observed`](ScatternetSim::run_observed) with the
    /// zero-allocation probe bracket of
    /// [`run_probed`](ScatternetSim::run_probed), plus optional per-event
    /// cost meters — one per island, in [`PiconetId`] order (or an empty
    /// vector for none). Meters receive a `begin`/`end(tag)` pair around
    /// every island event and are handed back on the
    /// [`ObservedRun`]; wall-clock meters live in the harness crates
    /// (`btgs-obs`), keeping ambient time out of the simulation.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`]; additionally rejects a meter vector
    /// whose length does not match the piconet count.
    pub fn run_observed_probed(
        self,
        checkpoint: SimTime,
        horizon: SimTime,
        probe: &mut dyn FnMut(),
        cfg: ObsConfig,
        meters: Vec<Box<dyn EventMeter>>,
    ) -> Result<ObservedRun, PiconetError> {
        if !meters.is_empty() && meters.len() != self.islands.len() {
            return Err(PiconetError(format!(
                "{} event meters for {} piconets (provide one per island, or none)",
                meters.len(),
                self.islands.len()
            )));
        }
        let out = self.run_inner(checkpoint, horizon, probe, false, None, Some((cfg, meters)))?;
        let (trace, telemetry, meters) = out.observed.expect("observed runs carry their outputs");
        Ok(ObservedRun {
            report: out.report.expect("observed runs always carry a report"),
            trace,
            telemetry,
            meters,
        })
    }

    /// Runs to `horizon` with the causality sanitizer enabled: per-phase
    /// checks of lookahead safety, widening boundaries, staged-relay total
    /// order, wheel FIFO and cross-island packet conservation (see the
    /// [`sanitizer`](crate::SanitizerCheck) docs). The engine halts at the
    /// end of the round that records the first finding, and a halted run's
    /// report is withheld; a clean sanitized run returns a report
    /// **byte-identical** to the unsanitized run of the same
    /// configuration. Plain [`run`](ScatternetSim::run) compiles all of
    /// this out.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`].
    pub fn run_sanitized(self, horizon: SimTime) -> Result<SanitizedRun, PiconetError> {
        let out = self.run_inner(horizon, horizon, &mut || {}, true, None, None)?;
        Ok(SanitizedRun {
            report: out.report,
            sanitizer: out
                .sanitizer
                .expect("sanitized runs carry a sanitizer report"),
        })
    }

    /// Runs to `horizon` recording an event trace ([`TraceConfig`]):
    /// per-island rolling hashes for divergence search, or a bounded
    /// descriptor window for an aligned counterexample. The divergence
    /// bisector ([`crate::bisect_runs`]) drives two traced runs to the
    /// first diverging event.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`].
    pub fn run_traced(
        self,
        horizon: SimTime,
        trace: TraceConfig,
    ) -> Result<(ScatternetReport, RunTrace), PiconetError> {
        let out = self.run_inner(horizon, horizon, &mut || {}, false, Some(trace), None)?;
        Ok((
            out.report.expect("traced runs always carry a report"),
            out.trace.expect("traced runs carry a trace"),
        ))
    }

    /// Seeds one deliberately broken engine variant (builder style).
    /// Test-only: the sanitizer-corpus tests prove each mutation is caught
    /// and localized; never part of a supported configuration.
    #[doc(hidden)]
    #[must_use]
    pub fn with_mutation(mut self, mutation: EngineMutation) -> ScatternetSim {
        self.mutation = Some(mutation);
        self
    }

    /// The shared run loop behind [`run_probed`](ScatternetSim::run_probed)
    /// (uninstrumented), [`run_sanitized`](ScatternetSim::run_sanitized)
    /// and [`run_traced`](ScatternetSim::run_traced): seeds the islands,
    /// dispatches the sequential or parallel engine (instrumented
    /// monomorphisation only when sanitizing or tracing), and assembles
    /// the report plus whatever instrumentation output was requested.
    fn run_inner(
        mut self,
        checkpoint: SimTime,
        horizon: SimTime,
        probe: &mut dyn FnMut(),
        sanitize: bool,
        trace: Option<TraceConfig>,
        obs: Option<(ObsConfig, Vec<Box<dyn EventMeter>>)>,
    ) -> Result<RunInnerOutput, PiconetError> {
        // `self` is consumed, so a sim cannot run twice by construction.
        for (pic, island) in self.islands.iter_mut().enumerate() {
            let fed = &self.relay_fed[pic];
            let (sched, st) = island.split_mut();
            st.world.check_sources(&|idx| fed[idx])?;
            st.world.check_horizon(horizon)?;
            st.world.horizon = horizon;
            seed_world(sched, &mut st.world);
            // Record which sources feed chain-entry flows: their pending
            // arrival instants bound the island's chain hotness.
            st.entry_sources = st
                .world
                .sources
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s.target {
                    Target::Flow(idx) if st.world.chain_entry[idx] => Some(i),
                    _ => None,
                })
                .collect();
        }

        // Instrumentation: install the per-island probes (sanitizer state,
        // trace sinks, observability recorders) and the coordinator-side
        // control. All of it is behind the `I` monomorphisation seam —
        // default runs never touch any of this beyond a handful of
        // `Option::None` branches per round.
        let (obs_cfg, obs_meters) = match obs {
            Some((cfg, meters)) => (Some(cfg), meters),
            None => (None, Vec::new()),
        };
        let instrumented = sanitize || trace.is_some() || obs_cfg.is_some();
        let tripped = Arc::new(AtomicBool::new(false));
        if instrumented {
            // An empty meter vector yields `None` for every island.
            let mut meters = obs_meters.into_iter();
            for island in self.islands.iter_mut() {
                let st = island.state_mut();
                let island_obs = obs_cfg
                    .as_ref()
                    .map(|cfg| IslandObs::new(st.pic, cfg, meters.next()));
                st.probe = Some(Box::new(IslandProbe::new(
                    st.pic,
                    Arc::clone(&tripped),
                    sanitize,
                    trace.as_ref(),
                    island_obs,
                )));
            }
        }
        let mut coord_obs = obs_cfg.as_ref().map(CoordObs::new);
        let mut san = sanitize.then(|| EngineSanitizer::new(Arc::clone(&tripped)));
        let mut muts = self.mutation.map(MutationState::new);
        let mut ctl = EngineCtl {
            san: san.as_mut(),
            muts: muts.as_mut(),
            obs: coord_obs.as_mut(),
        };

        // The island visit order: identity, or a deterministic shuffle to
        // prove order independence.
        let mut order: Vec<usize> = (0..self.islands.len()).collect();
        if let Some(seed) = self.shuffle_seed {
            let mut rng = DetRng::seed_from_u64(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.below(i as u64 + 1) as usize);
            }
        }
        // Workers beyond the host's cores cannot run concurrently — they
        // only add barrier crossings and scheduler churn. Clamp to the
        // available parallelism, with a floor of two so a parallel run
        // still exercises the parallel engine on a single-core host.
        // Reports are thread-count-invariant, so the clamp never shows in
        // results, only in wall time.
        let hw = std::thread::available_parallelism().map_or(usize::MAX, |c| c.get());
        let threads = self.threads.min(order.len()).min(hw.max(2)).max(1);
        let mode = EngineMode {
            widening: self.widening,
            batching: self.batching,
        };

        let (islands, counters) = if threads == 1 {
            // Single-threaded: the same algorithm without locks, atomics
            // or barriers.
            let mut islands = self.islands;
            let counters = if instrumented {
                run_phases_seq::<true>(
                    &mut islands,
                    &order,
                    &self.sync_points,
                    checkpoint,
                    horizon,
                    probe,
                    mode,
                    &mut ctl,
                )
            } else {
                run_phases_seq::<false>(
                    &mut islands,
                    &order,
                    &self.sync_points,
                    checkpoint,
                    horizon,
                    probe,
                    mode,
                    &mut ctl,
                )
            };
            (islands, counters)
        } else {
            let cells: Vec<Mutex<IslandSim>> = self.islands.into_iter().map(Mutex::new).collect();
            let counters = if instrumented {
                run_phases_par::<true>(
                    &cells,
                    &order,
                    &self.sync_points,
                    checkpoint,
                    horizon,
                    probe,
                    threads,
                    mode,
                    &mut ctl,
                )
            } else {
                run_phases_par::<false>(
                    &cells,
                    &order,
                    &self.sync_points,
                    checkpoint,
                    horizon,
                    probe,
                    threads,
                    mode,
                    &mut ctl,
                )
            };
            let islands = cells
                .into_iter()
                .map(|c| c.into_inner().expect("no poisoned islands"))
                .collect();
            (islands, counters)
        };

        let mut chains: Vec<ChainReport> = self
            .chain_hops
            .into_iter()
            .map(|hops| ChainReport {
                hops,
                relayed_packets: 0,
                delivered_packets: 0,
                e2e: DelayStats::new(),
                residence: DelayStats::new(),
            })
            .collect();
        let islands: Vec<IslandSim> = islands;
        let mut piconets = Vec::with_capacity(islands.len());
        let mut probes: Vec<IslandProbe> =
            Vec::with_capacity(if instrumented { piconets.capacity() } else { 0 });
        let mut events_processed = 0;
        for island in islands {
            let events = island.events_processed();
            events_processed += events;
            let mut st = island.into_state();
            if let Some(probe) = st.probe.take() {
                probes.push(*probe);
            }
            for (ci, local) in st.chain_stats.into_iter().enumerate() {
                let report = &mut chains[ci];
                report.relayed_packets += local.relayed;
                report.delivered_packets += local.delivered;
                report.e2e.merge(&local.e2e);
                report.residence.merge(&local.residence);
            }
            piconets.push(st.world.into_report(horizon, events));
        }
        let report = ScatternetReport {
            piconets,
            chains,
            events_processed,
            phases_run: counters.phases_run,
            barrier_rounds: counters.barrier_rounds,
            islands_claimed: counters.islands_claimed,
            relays_staged: counters.relays_staged,
            widening_stretches: counters.widening_stretches,
            islands_skipped_idle: counters.islands_skipped_idle,
            relays_injected: counters.relays_injected,
        };

        let sanitizer = san.map(|mut s| {
            s.finish(&probes);
            s.into_report(&mut probes)
        });
        let run_trace = trace.is_some().then(|| RunTrace {
            islands: probes.iter_mut().map(IslandProbe::take_trace).collect(),
        });
        let observed = coord_obs.map(|coord| {
            let island_obs: Vec<IslandObs> = probes
                .iter_mut()
                .filter_map(IslandProbe::take_obs)
                .collect();
            crate::telemetry::assemble(coord, island_obs, &counters, &report)
        });
        // ord: Relaxed — every engine participant has joined or unlocked
        // by now; this is a post-run summary read.
        let halted = sanitize && tripped.load(Ordering::Relaxed);
        Ok(RunInnerOutput {
            report: if halted { None } else { Some(report) },
            sanitizer,
            trace: run_trace,
            observed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at_ms(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn next_start_after_is_strictly_after_t() {
        let phase = ms(3);
        let cycle = ms(10);
        // Before the anchor: the anchor itself is the first start.
        assert_eq!(next_start_after(SimTime::ZERO, phase, cycle), at_ms(3));
        // Exactly at the anchor: strictly after means one full cycle on.
        assert_eq!(next_start_after(at_ms(3), phase, cycle), at_ms(13));
        // Exactly on a later boundary: again strictly after.
        assert_eq!(next_start_after(at_ms(23), phase, cycle), at_ms(33));
        // Mid-cycle: the enclosing cycle's next start.
        assert_eq!(next_start_after(at_ms(17), phase, cycle), at_ms(23));
        // Zero phase anchors at the origin.
        assert_eq!(next_start_after(SimTime::ZERO, ms(0), cycle), at_ms(10));
    }

    #[test]
    fn next_start_after_is_on_grid_and_minimal() {
        // Property sweep: the result is strictly after t, lands on the
        // window grid, and no earlier grid point is strictly after t.
        for (phase_ms, cycle_ms) in [(0u64, 7u64), (3, 10), (9, 10), (5, 12), (11, 13)] {
            let phase = ms(phase_ms);
            let cycle = ms(cycle_ms);
            let anchor = SimTime::ZERO + phase;
            for t_ms in 0..200u64 {
                let t = at_ms(t_ms);
                let s = next_start_after(t, phase, cycle);
                assert!(s > t, "start {s} not after {t}");
                assert!(s >= anchor);
                let off = s - anchor;
                assert_eq!(
                    off.div_duration(cycle) * cycle,
                    off,
                    "start {s} off the ({phase_ms},{cycle_ms}) grid"
                );
                // Minimality: one cycle earlier is at or before t (the
                // anchor itself has no earlier grid point).
                if s != anchor {
                    assert!(s - cycle <= t);
                }
            }
        }
    }

    #[test]
    fn coincident_sync_points_merge_and_dedupe_sources() {
        let mut points = Vec::new();
        push_sync_point(&mut points, ms(3), ms(10), 0);
        push_sync_point(&mut points, ms(3), ms(10), 4);
        push_sync_point(&mut points, ms(3), ms(10), 0); // duplicate source
        push_sync_point(&mut points, ms(5), ms(10), 1); // other phase
        push_sync_point(&mut points, ms(3), ms(20), 2); // other cycle
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].sources, vec![0, 4]);
        assert_eq!(points[1].sources, vec![1]);
        assert_eq!(points[2].sources, vec![2]);
    }

    /// Reference semantics of [`next_boundary`]: the minimum over every
    /// cap and every group's next landable start, with no pruning.
    #[allow(clippy::too_many_arguments)]
    fn naive_boundary(
        t: SimTime,
        checkpoint: SimTime,
        probed: bool,
        horizon: SimTime,
        pool_min: Option<SimTime>,
        groups: &[SyncPoint],
        widening: bool,
        hot: &[SimTime],
    ) -> SimTime {
        let mut candidates = vec![horizon];
        if !probed && checkpoint > t {
            candidates.push(checkpoint);
        }
        if let Some(p) = pool_min {
            candidates.push(p);
        }
        for g in groups {
            let from = if widening {
                g.sources
                    .iter()
                    .map(|&p| hot[p as usize])
                    .min()
                    .unwrap_or(SimTime::MAX)
            } else {
                SimTime::ZERO
            };
            if from == SimTime::MAX {
                continue;
            }
            candidates.push(next_start_after(t.max(from), g.phase, g.cycle));
        }
        candidates
            .into_iter()
            .min()
            .expect("horizon is always there")
    }

    #[test]
    fn calendar_boundary_matches_naive_scan() {
        // A 3-group calendar over 4 islands with every hotness shape:
        // always hot, drained (MAX), and mid-run instants on and off the
        // grids. The calendar walk must agree with the unpruned reference
        // at every probe time, both widened and fixed.
        let mut groups = Vec::new();
        push_sync_point(&mut groups, ms(3), ms(10), 0);
        push_sync_point(&mut groups, ms(3), ms(10), 1);
        push_sync_point(&mut groups, ms(5), ms(12), 2);
        push_sync_point(&mut groups, ms(0), ms(7), 3);
        let hots: [[u64; 4]; 4] = [
            [0, 0, 0, 0],
            [0, 50, u64::MAX, 33],
            [u64::MAX, u64::MAX, u64::MAX, u64::MAX],
            [13, 13, 24, 91],
        ];
        let checkpoint = at_ms(100);
        let horizon = at_ms(180);
        for hot_ms in hots {
            let hot: Vec<SimTime> = hot_ms
                .iter()
                .map(|&v| {
                    if v == u64::MAX {
                        SimTime::MAX
                    } else {
                        at_ms(v)
                    }
                })
                .collect();
            for widening in [false, true] {
                for probed in [false, true] {
                    for t_ms in 0..170u64 {
                        let t = at_ms(t_ms);
                        let pool_min = (t_ms % 3 == 0).then(|| t + ms(1 + t_ms % 17));
                        let got = next_boundary(
                            t,
                            checkpoint,
                            probed,
                            horizon,
                            pool_min,
                            &groups,
                            widening,
                            |i| hot[i],
                        );
                        let want = naive_boundary(
                            t, checkpoint, probed, horizon, pool_min, &groups, widening, &hot,
                        );
                        assert_eq!(
                            got, want,
                            "boundary diverged at t={t_ms}ms \
                             (widening {widening}, probed {probed}, hot {hot_ms:?})"
                        );
                        assert!(got > t || got == horizon);
                    }
                }
            }
        }
    }

    #[test]
    fn widened_boundaries_skip_cold_groups() {
        // One group whose only source goes hot at 50 ms: before that the
        // horizon is the boundary; afterwards the first start after the
        // hot instant is.
        let mut groups = Vec::new();
        push_sync_point(&mut groups, ms(3), ms(10), 0);
        let horizon = at_ms(200);
        let b = |hot_at: SimTime| {
            next_boundary(
                SimTime::ZERO,
                horizon,
                true,
                horizon,
                None,
                &groups,
                true,
                |_| hot_at,
            )
        };
        assert_eq!(b(SimTime::MAX), horizon);
        assert_eq!(b(at_ms(50)), at_ms(53));
        assert_eq!(b(SimTime::ZERO), at_ms(3));
        // Widening off: the calendar start counts regardless of hotness.
        let fixed = next_boundary(
            SimTime::ZERO,
            horizon,
            true,
            horizon,
            None,
            &groups,
            false,
            |_| SimTime::MAX,
        );
        assert_eq!(fixed, at_ms(3));
    }

    #[test]
    fn spin_barrier_survives_oversubscription() {
        // More waiters than the host has cores: every thread must still
        // clear every round (the backoff path keeps starved waiters from
        // spinning the releaser off the CPU).
        let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
        let n = 4 * cores + 1;
        let rounds = 40;
        let barrier = std::sync::Arc::new(SpinBarrier::new(n));
        let hits = std::sync::Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..n)
            .map(|_| {
                let barrier = std::sync::Arc::clone(&barrier);
                let hits = std::sync::Arc::clone(&hits);
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        // ord: Relaxed — a test tally; the final read is
                        // ordered by the joins below.
                        hits.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("barrier waiter panicked");
        }
        // ord: Relaxed — all writers joined above.
        assert_eq!(hits.load(Ordering::Relaxed), (n * rounds) as u64);
    }
}
