//! The scatternet layer: N piconets, bridge slaves on deterministic
//! rendezvous schedules, and cross-piconet flows relayed hop by hop.
//!
//! The paper's future-work section points at inter-piconet operation; this
//! module opens that workload without touching the single-piconet
//! semantics:
//!
//! * a [`ShardedFlowArena`] routes every global [`FlowId`] to its
//!   `(PiconetId, FlowIdx)` shard — per-piconet [`FlowTable`]s stay dense
//!   and the global id space stays O(1) to resolve;
//! * [`BridgeSpec`]s describe slaves that time-share between two piconets
//!   on a periodic rendezvous cycle; their [`PresenceWindow`]s are injected
//!   into each piconet's presence mask, so pollers skip absent bridges;
//! * [`ChainSpec`]s compose per-piconet flows into cross-piconet paths.
//!   Packets completing a hop are re-enqueued on the next hop — at the
//!   exchange end for master relays (same device), or when the bridge next
//!   appears in the target piconet (the *residence time*);
//! * [`ScatternetSim`] drives all piconet worlds on **one** shared timing
//!   wheel, reusing the single-piconet event handlers verbatim — a piconet
//!   inside a scatternet and a [`PiconetSim`](crate::PiconetSim) run the
//!   same code;
//! * [`ScatternetReport`] carries each piconet's [`RunReport`] (per-hop
//!   delay statistics included) plus per-chain end-to-end and residence
//!   [`DelayStats`]: with immediate master relays, end-to-end delay is
//!   exactly the sum of per-hop queueing delays plus bridge residence.
//!
//! The steady state is allocation-free like the single-piconet loop: relay
//! outboxes, origin FIFOs and report buffers are pre-reserved at build
//! time.

use crate::config::{PiconetConfig, PiconetError};
use crate::flow::FlowSpec;
use crate::flow_table::{FlowIdHasher, FlowIdx, FlowTable};
use crate::poller::Poller;
use crate::report::RunReport;
use crate::sim::{handle, seed_world, Ev, EvSink, World};
use btgs_baseband::{ChannelModel, PiconetId, PresenceWindow, ScopedSlave};
use btgs_des::{EventKey, EventQueue, Scheduler, SimDuration, SimTime, Simulator};
use btgs_metrics::DelayStats;
use btgs_traffic::{AppPacket, FlowId, Source};
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;

/// How one global flow id resolves to its shard. Mirrors the dense/spread
/// split of the per-piconet id index.
#[derive(Clone, Debug)]
enum RouteIndex {
    /// Direct map for small id spaces: one masked array read.
    Dense(Vec<Option<(PiconetId, FlowIdx)>>),
    /// Fast-hash map for sparse id spaces.
    Spread(HashMap<FlowId, (PiconetId, FlowIdx), BuildHasherDefault<FlowIdHasher>>),
}

/// Largest id the direct map will spend memory on, relative to flow count.
const DENSE_ID_HEADROOM: usize = 64;

/// The sharded flow arena of a scatternet: one dense [`FlowTable`] per
/// piconet, plus a global index from [`FlowId`] to `(PiconetId, FlowIdx)`.
///
/// Flow ids are globally unique across shards (validated at construction),
/// so a global id resolves to exactly one shard — no cross-shard aliasing.
///
/// # Examples
///
/// ```
/// use btgs_piconet::{FlowSpec, FlowTable, ShardedFlowArena};
/// use btgs_baseband::{AmAddr, Direction, LogicalChannel, PiconetId};
/// use btgs_traffic::FlowId;
///
/// let s = |n| AmAddr::new(n).unwrap();
/// let shard0 = FlowTable::new(vec![FlowSpec::new(
///     FlowId(1), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService,
/// )]).unwrap();
/// let shard1 = FlowTable::new(vec![FlowSpec::new(
///     FlowId(101), s(1), Direction::SlaveToMaster, LogicalChannel::GuaranteedService,
/// )]).unwrap();
/// let arena = ShardedFlowArena::new(vec![shard0, shard1]).unwrap();
/// let (pic, idx) = arena.route(FlowId(101)).unwrap();
/// assert_eq!(pic, PiconetId(1));
/// assert_eq!(arena.shard(pic).id(idx), FlowId(101));
/// assert!(arena.route(FlowId(2)).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ShardedFlowArena {
    shards: Vec<FlowTable>,
    route: RouteIndex,
    len: usize,
}

impl ShardedFlowArena {
    /// Builds the arena from per-piconet flow tables.
    ///
    /// # Errors
    ///
    /// Returns an error if a flow id appears in more than one shard, or if
    /// there are more than 255 shards (piconet ids are 8-bit).
    pub fn new(shards: Vec<FlowTable>) -> Result<ShardedFlowArena, String> {
        if shards.len() > u8::MAX as usize {
            return Err(format!(
                "{} piconets exceed the 255 the 8-bit PiconetId can name",
                shards.len()
            ));
        }
        let len: usize = shards.iter().map(|t| t.len()).sum();
        let max_id = shards
            .iter()
            .flat_map(|t| t.specs())
            .map(|f| f.id.0 as usize)
            .max()
            .unwrap_or(0);
        let entries = shards.iter().enumerate().flat_map(|(p, t)| {
            t.iter()
                .map(move |(idx, f)| (f.id, (PiconetId(p as u8), idx)))
        });
        let route = if max_id <= len * 8 + DENSE_ID_HEADROOM {
            let mut dense = vec![None; max_id + 1];
            for (id, target) in entries {
                let slot = &mut dense[id.0 as usize];
                if slot.is_some() {
                    return Err(format!("flow id {id} appears in more than one piconet"));
                }
                *slot = Some(target);
            }
            RouteIndex::Dense(dense)
        } else {
            let mut map: HashMap<_, _, BuildHasherDefault<FlowIdHasher>> =
                HashMap::with_capacity_and_hasher(len, BuildHasherDefault::default());
            for (id, target) in entries {
                if map.insert(id, target).is_some() {
                    return Err(format!("flow id {id} appears in more than one piconet"));
                }
            }
            RouteIndex::Spread(map)
        };
        Ok(ShardedFlowArena { shards, route, len })
    }

    /// Number of piconet shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of flows across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no shard holds any flow.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dense flow table of one piconet.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn shard(&self, pic: PiconetId) -> &FlowTable {
        &self.shards[pic.index()]
    }

    /// All shards, in piconet order.
    pub fn shards(&self) -> &[FlowTable] {
        &self.shards
    }

    /// Resolves a global flow id to its `(piconet, dense index)` pair,
    /// O(1).
    #[inline]
    pub fn route(&self, id: FlowId) -> Option<(PiconetId, FlowIdx)> {
        match &self.route {
            RouteIndex::Dense(dense) => *dense.get(id.0 as usize)?,
            RouteIndex::Spread(map) => map.get(&id).copied(),
        }
    }

    /// The spec of a global flow id, O(1).
    pub fn spec_of(&self, id: FlowId) -> Option<&FlowSpec> {
        let (pic, idx) = self.route(id)?;
        Some(self.shards[pic.index()].spec(idx))
    }
}

/// A bridge slave: one radio that is `upstream.slave` in piconet
/// `upstream.piconet` and `downstream.slave` in piconet
/// `downstream.piconet`, alternating between the two on a fixed cycle.
///
/// Within every `cycle`, the bridge spends `[0, dwell_upstream)` in the
/// upstream piconet and `[dwell_upstream, cycle)` in the downstream one.
/// Packets cross the bridge in the upstream→downstream direction: a
/// downlink hop delivers to the bridge while it sits upstream, and the
/// relayed packet becomes transmittable downstream when the bridge next
/// appears there.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BridgeSpec {
    /// The bridge's identity in the piconet packets arrive from.
    pub upstream: ScopedSlave,
    /// The bridge's identity in the piconet packets continue into.
    pub downstream: ScopedSlave,
    /// Rendezvous cycle length (slot-pair aligned).
    pub cycle: SimDuration,
    /// Time per cycle spent in the upstream piconet; the remainder is spent
    /// downstream.
    pub dwell_upstream: SimDuration,
}

impl BridgeSpec {
    /// The presence windows of the bridge: `(upstream, downstream)`.
    ///
    /// # Errors
    ///
    /// Returns the window validation error (zero dwell, misaligned or
    /// overlong durations).
    pub fn windows(&self) -> Result<(PresenceWindow, PresenceWindow), PiconetError> {
        let up = PresenceWindow::new(self.cycle, SimDuration::ZERO, self.dwell_upstream)
            .map_err(|e| PiconetError(format!("bridge {}: {e}", self.upstream)))?;
        let down = PresenceWindow::new(
            self.cycle,
            self.dwell_upstream,
            self.cycle - self.dwell_upstream,
        )
        .map_err(|e| PiconetError(format!("bridge {}: {e}", self.downstream)))?;
        Ok((up, down))
    }
}

/// A cross-piconet flow: an ordered list of per-piconet hop flows.
///
/// Consecutive hops must share a device: an uplink hop followed by a
/// downlink hop in the same piconet (the master relays internally), or a
/// downlink hop to a bridge slave followed by an uplink hop from that
/// bridge's identity in the next piconet. A bridge may be crossed in
/// either direction — upstream→downstream or back — so bidirectional
/// chains share one rendezvous schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSpec {
    /// The hop flows, in path order. The first hop is fed by a registered
    /// source; every later hop is fed by relaying.
    pub hops: Vec<FlowId>,
    /// The per-hop polling intervals granted by multi-hop admission, in
    /// path order — recorded for reporting/auditing; the simulator itself
    /// polls whatever its per-piconet pollers decide. Empty when the chain
    /// was not admission-controlled; otherwise must match `hops` in
    /// length.
    pub hop_intervals: Vec<SimDuration>,
}

impl ChainSpec {
    /// A chain over `hops` without recorded admission grants.
    pub fn new(hops: Vec<FlowId>) -> ChainSpec {
        ChainSpec {
            hops,
            hop_intervals: Vec::new(),
        }
    }

    /// Attaches the admission-granted per-hop polling intervals (builder
    /// style).
    #[must_use]
    pub fn with_intervals(mut self, hop_intervals: Vec<SimDuration>) -> ChainSpec {
        self.hop_intervals = hop_intervals;
        self
    }
}

/// Static description of a scatternet scenario.
#[derive(Clone, Debug)]
pub struct ScatternetConfig {
    /// The piconets, indexed by [`PiconetId`].
    pub piconets: Vec<PiconetConfig>,
    /// The bridge slaves connecting them.
    pub bridges: Vec<BridgeSpec>,
    /// Cross-piconet flows relayed across the bridges.
    pub chains: Vec<ChainSpec>,
}

/// What happens to a packet that completes delivery on a captured hop.
#[derive(Clone, Copy, Debug)]
enum HopNext {
    /// Last hop of its chain: record end-to-end delay.
    Terminal {
        chain: u32,
        /// Position of the completed hop within the chain.
        hop: u16,
    },
    /// Relay onto the next hop.
    Forward {
        chain: u32,
        /// Position of the completed hop within the chain (0 = first hop,
        /// whose packet arrival is the chain's origin timestamp).
        hop: u16,
        /// Target piconet.
        pic: u8,
        /// Dense index of the target hop flow in its piconet.
        flow_idx: u32,
        /// Bridge crossings wait for the target-piconet presence window;
        /// `None` is a master-internal relay (immediate).
        window: Option<PresenceWindow>,
    },
}

/// Per-chain runtime accounting.
///
/// Every chain statistic and counter covers the same packet population:
/// packets whose *origin* (first-hop arrival) falls inside the measurement
/// window. Per-flow FIFO order holds at every hop, and origins are
/// non-decreasing, so the warm-up packets form a prefix of each hop's
/// crossing sequence — a crossing is attributed to a counted packet by
/// comparing its per-hop index against the warm-up prefix length, with no
/// per-packet bookkeeping beyond the origin FIFO.
struct ChainRt {
    hops: Vec<FlowId>,
    /// Origin (first-hop arrival) timestamps of packets in flight along the
    /// chain, FIFO — per-flow order is preserved across hops, so the
    /// terminal hop pops its own origin.
    origins: VecDeque<SimTime>,
    /// Packets that have completed each hop so far (crossing index).
    crossings: Vec<u64>,
    /// Number of packets whose origin fell into warm-up — a prefix of every
    /// hop's crossing sequence (origins are non-decreasing).
    warmup_origins: u64,
    e2e: DelayStats,
    residence: DelayStats,
    relayed: u64,
    delivered: u64,
}

/// A piconet-tagged event on the shared scatternet wheel.
#[derive(Debug)]
struct SEv {
    pic: u8,
    ev: Ev,
}

/// [`EvSink`] adapter: tags every event scheduled by a piconet's handlers
/// with that piconet's id before it reaches the shared scheduler.
struct PicCtx<'a> {
    sched: &'a mut Scheduler<SEv, EventQueue<SEv>>,
    pic: u8,
}

impl EvSink for PicCtx<'_> {
    #[inline]
    fn now(&self) -> SimTime {
        self.sched.now()
    }

    #[inline]
    fn schedule_at(&mut self, at: SimTime, ev: Ev) -> EventKey {
        self.sched.schedule_at(at, SEv { pic: self.pic, ev })
    }

    #[inline]
    fn cancel(&mut self, key: EventKey) {
        let _ = self.sched.cancel(key);
    }

    #[inline]
    fn next_event_time(&mut self) -> Option<SimTime> {
        // Conservative: any same-instant event (even another piconet's)
        // routes the wake through the queue instead of inlining it.
        self.sched.next_event_time()
    }
}

/// The shared state of all piconets plus the relay fabric.
struct ScatterWorld {
    worlds: Vec<World>,
    /// `routes[pic][flow_idx]`: relay action for captured flows.
    routes: Vec<Vec<Option<HopNext>>>,
    chains: Vec<ChainRt>,
    /// Chain statistics are recorded for packets originating at or after
    /// this instant (the maximum piconet warm-up).
    warmup: SimTime,
}

fn handle_scatter(sched: &mut Scheduler<SEv, EventQueue<SEv>>, sw: &mut ScatterWorld, ev: SEv) {
    let pic = ev.pic as usize;
    {
        let mut ctx = PicCtx { sched, pic: ev.pic };
        handle(&mut ctx, &mut sw.worlds[pic], ev.ev);
    }
    if sw.worlds[pic].outbox.is_empty() {
        return;
    }
    // Route every packet the handler completed on a captured hop. The
    // outbox cannot grow while draining (routing only schedules events), so
    // the indexed loop is exact; `Captured` is `Copy`, so each read ends
    // its borrow before the routing mutates chains.
    let captured = sw.worlds[pic].outbox.len();
    for i in 0..captured {
        let cap = sw.worlds[pic].outbox[i];
        let Some(next) = sw.routes[pic][cap.flow_idx] else {
            debug_assert!(false, "captured flow without a route");
            continue;
        };
        match next {
            HopNext::Terminal { chain, hop } => {
                let c = &mut sw.chains[chain as usize];
                let i = c.crossings[hop as usize];
                c.crossings[hop as usize] += 1;
                let origin = c.origins.pop_front().expect(
                    "per-flow FIFO holds across hops: every terminal delivery has an origin",
                );
                // Counted iff the packet is past the warm-up prefix —
                // equivalent to `origin >= warmup` here (asserted), phrased
                // the same way as the intermediate hops for symmetry.
                if i >= c.warmup_origins {
                    debug_assert!(origin >= sw.warmup);
                    c.delivered += 1;
                    c.e2e.record(cap.at - origin);
                }
            }
            HopNext::Forward {
                chain,
                hop,
                pic: tpic,
                flow_idx,
                window,
            } => {
                let now = sched.now();
                // The handoff instant: immediately for a master-internal
                // relay; when the bridge next appears in the target piconet
                // for a bridge crossing. The `max(now)` only guards against
                // hand-built non-complementary schedules — derived bridge
                // windows always put the next appearance at or after the
                // exchange end.
                let handoff = match &window {
                    Some(w) => w.next_present(cap.at).max(now),
                    None => now,
                };
                let flow = sw.worlds[tpic as usize].table.id(FlowIdx(flow_idx));
                let c = &mut sw.chains[chain as usize];
                let i = c.crossings[hop as usize];
                c.crossings[hop as usize] += 1;
                if hop == 0 {
                    // Classify the origin before the counted check, so a
                    // warm-up packet extends the prefix past itself.
                    if cap.pkt.arrival < sw.warmup {
                        c.warmup_origins += 1;
                    }
                    c.origins.push_back(cap.pkt.arrival);
                }
                // Counted iff this crossing belongs to a packet whose
                // origin cleared warm-up: all chain statistics and counters
                // cover exactly the same packet population.
                if i >= c.warmup_origins {
                    c.relayed += 1;
                    if window.is_some() {
                        c.residence.record(handoff - cap.at);
                    }
                }
                let pkt = AppPacket::new(cap.pkt.seq, flow, cap.pkt.size, handoff);
                sched.schedule_at(
                    handoff,
                    SEv {
                        pic: tpic,
                        ev: Ev::Relay {
                            flow_idx: flow_idx as usize,
                            pkt,
                        },
                    },
                );
            }
        }
    }
    sw.worlds[pic].outbox.clear();
}

/// Measurements of one cross-piconet chain.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// The hop flows, in path order.
    pub hops: Vec<FlowId>,
    /// Packets relayed onto a further hop within the measurement window
    /// (counted once per hop crossed).
    pub relayed_packets: u64,
    /// Packets that completed the final hop and originated within the
    /// measurement window (always equal to `e2e.count()`).
    pub delivered_packets: u64,
    /// End-to-end delay: first-hop arrival to final-hop delivery. Equals
    /// the sum of per-hop queueing delays plus the bridge residence times
    /// (master relays are immediate).
    pub e2e: DelayStats,
    /// Bridge residence: delivery at the bridge to the bridge's next
    /// appearance in the target piconet, per bridge crossing.
    pub residence: DelayStats,
}

/// The complete result of one scatternet run.
#[derive(Clone, Debug)]
pub struct ScatternetReport {
    /// Per-piconet run reports (per-hop delay statistics live here, under
    /// the hop flows' ids). Their `events_processed` fields are zero — the
    /// engine is shared, see [`ScatternetReport::events_processed`].
    pub piconets: Vec<RunReport>,
    /// Per-chain end-to-end measurements.
    pub chains: Vec<ChainReport>,
    /// Total events the shared engine processed over the whole run.
    pub events_processed: u64,
}

impl ScatternetReport {
    /// The run report of one piconet.
    ///
    /// # Panics
    ///
    /// Panics if `pic` is out of range.
    pub fn piconet(&self, pic: PiconetId) -> &RunReport {
        &self.piconets[pic.index()]
    }

    /// Aggregate delivered throughput over all piconets, in kbit/s.
    pub fn total_throughput_kbps(&self) -> f64 {
        self.piconets
            .iter()
            .map(RunReport::total_throughput_kbps)
            .sum()
    }
}

/// A configured scatternet simulation, ready to run.
///
/// Owns one [`World`] per piconet, all driven by a single shared timing
/// wheel; see the [module docs](self) for the relay semantics.
pub struct ScatternetSim {
    sim: Simulator<ScatterWorld, SEv, EventQueue<SEv>>,
    arena: ShardedFlowArena,
    /// `relay_fed[pic][flow_idx]`: fed by relaying, exempt from the
    /// one-source-per-flow rule.
    relay_fed: Vec<Vec<bool>>,
}

impl ScatternetSim {
    /// Builds a scatternet simulation.
    ///
    /// `pollers` and `channels` are per piconet, in [`PiconetId`] order.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule: per-piconet configuration errors,
    /// bridge windows that do not fit their cycle, bridges naming unknown
    /// piconets or doubling up on a slave, chains whose hops are unknown,
    /// shared, or not connected device-to-device.
    pub fn new(
        config: ScatternetConfig,
        pollers: Vec<Box<dyn Poller>>,
        channels: Vec<Box<dyn ChannelModel>>,
    ) -> Result<ScatternetSim, PiconetError> {
        let n = config.piconets.len();
        if n == 0 {
            return Err(PiconetError(
                "a scatternet needs at least one piconet".into(),
            ));
        }
        if n > u8::MAX as usize {
            return Err(PiconetError(format!(
                "{n} piconets exceed the 255 the 8-bit PiconetId can name"
            )));
        }
        if pollers.len() != n || channels.len() != n {
            return Err(PiconetError(format!(
                "{n} piconets need exactly {n} pollers and {n} channel models"
            )));
        }

        // Inject the bridge presence windows into each piconet's mask.
        let mut piconets = config.piconets.clone();
        let mut bridge_windows: Vec<(PresenceWindow, PresenceWindow)> =
            Vec::with_capacity(config.bridges.len());
        for b in &config.bridges {
            if b.upstream.piconet.index() >= n || b.downstream.piconet.index() >= n {
                return Err(PiconetError(format!(
                    "bridge {} -> {} names an unknown piconet",
                    b.upstream, b.downstream
                )));
            }
            if b.upstream.piconet == b.downstream.piconet {
                return Err(PiconetError(format!(
                    "bridge {} -> {} must connect two distinct piconets",
                    b.upstream, b.downstream
                )));
            }
            let (up, down) = b.windows()?;
            piconets[b.upstream.piconet.index()]
                .presence
                .set(b.upstream.slave, up)?;
            piconets[b.downstream.piconet.index()]
                .presence
                .set(b.downstream.slave, down)?;
            bridge_windows.push((up, down));
        }

        // Build the per-piconet worlds and the sharded arena over their
        // dense flow tables.
        let mut worlds = Vec::with_capacity(n);
        let mut chans = channels;
        let mut polls = pollers;
        for cfg in piconets.iter().rev() {
            // Pop from the back so ownership moves without index juggling.
            let poller = polls.pop().expect("length checked");
            let channel = chans.pop().expect("length checked");
            worlds.push(World::build(cfg, poller, channel)?);
        }
        worlds.reverse();
        let arena = ShardedFlowArena::new(worlds.iter().map(|w| w.table.clone()).collect())
            .map_err(PiconetError)?;

        // Resolve the chains into relay routes.
        let mut routes: Vec<Vec<Option<HopNext>>> =
            worlds.iter().map(|w| vec![None; w.table.len()]).collect();
        let mut relay_fed: Vec<Vec<bool>> =
            worlds.iter().map(|w| vec![false; w.table.len()]).collect();
        let mut chains = Vec::with_capacity(config.chains.len());
        for (ci, chain) in config.chains.iter().enumerate() {
            if chain.hops.len() < 2 {
                return Err(PiconetError(format!(
                    "chain {ci} needs at least two hops (a single-hop chain is just a flow)"
                )));
            }
            if !chain.hop_intervals.is_empty() && chain.hop_intervals.len() != chain.hops.len() {
                return Err(PiconetError(format!(
                    "chain {ci} records {} granted intervals for {} hops",
                    chain.hop_intervals.len(),
                    chain.hops.len()
                )));
            }
            let resolved: Vec<(PiconetId, FlowIdx)> = chain
                .hops
                .iter()
                .map(|id| {
                    arena
                        .route(*id)
                        .ok_or_else(|| PiconetError(format!("chain {ci}: unknown hop flow {id}")))
                })
                .collect::<Result<_, _>>()?;
            for (k, window) in resolved.windows(2).enumerate() {
                let (apic, aidx) = window[0];
                let (bpic, bidx) = window[1];
                let a = arena.shard(apic).spec(aidx);
                let b = arena.shard(bpic).spec(bidx);
                let bridge_window = if apic == bpic {
                    // Master relay: hop k terminates at the master, hop k+1
                    // originates there.
                    if !a.direction.is_uplink() || !b.direction.is_downlink() {
                        return Err(PiconetError(format!(
                            "chain {ci}: hops {} -> {} stay in {apic} but do not relay \
                             through the master (uplink then downlink required)",
                            a.id, b.id
                        )));
                    }
                    None
                } else {
                    // Bridge relay: hop k delivers to the bridge slave, hop
                    // k+1 transmits from its identity in the next piconet.
                    if !a.direction.is_downlink() || !b.direction.is_uplink() {
                        return Err(PiconetError(format!(
                            "chain {ci}: hops {} -> {} cross piconets but do not relay \
                             through a bridge slave (downlink then uplink required)",
                            a.id, b.id
                        )));
                    }
                    // A bridge serves crossings in both directions: the
                    // handoff waits for the bridge's window in whichever
                    // piconet the packet continues into.
                    let from = ScopedSlave::new(apic, a.slave);
                    let into = ScopedSlave::new(bpic, b.slave);
                    let window = config
                        .bridges
                        .iter()
                        .zip(&bridge_windows)
                        .find_map(|(br, (up, down))| {
                            if br.upstream == from && br.downstream == into {
                                Some(*down)
                            } else if br.upstream == into && br.downstream == from {
                                Some(*up)
                            } else {
                                None
                            }
                        })
                        .ok_or_else(|| {
                            PiconetError(format!(
                                "chain {ci}: no bridge connects {apic}/{} to {bpic}/{}",
                                a.slave, b.slave
                            ))
                        })?;
                    Some(window)
                };
                let slot = &mut routes[apic.index()][aidx.get()];
                if slot.is_some() {
                    return Err(PiconetError(format!(
                        "hop flow {} is shared by two chain positions",
                        a.id
                    )));
                }
                *slot = Some(HopNext::Forward {
                    chain: ci as u32,
                    hop: k as u16,
                    pic: bpic.0,
                    flow_idx: bidx.0,
                    window: bridge_window,
                });
                relay_fed[bpic.index()][bidx.get()] = true;
            }
            let (lpic, lidx) = *resolved.last().expect("at least two hops");
            let slot = &mut routes[lpic.index()][lidx.get()];
            if slot.is_some() {
                return Err(PiconetError(format!(
                    "hop flow {} is shared by two chain positions",
                    arena.shard(lpic).id(lidx)
                )));
            }
            *slot = Some(HopNext::Terminal {
                chain: ci as u32,
                hop: (chain.hops.len() - 1) as u16,
            });

            let mut e2e = DelayStats::new();
            let mut residence = DelayStats::new();
            e2e.reserve(4096);
            residence.reserve(4096);
            chains.push(ChainRt {
                hops: chain.hops.clone(),
                origins: VecDeque::with_capacity(1024),
                crossings: vec![0; chain.hops.len()],
                warmup_origins: 0,
                e2e,
                residence,
                relayed: 0,
                delivered: 0,
            });
        }

        // Arm the capture flags and pre-size the relay machinery.
        for (pic, picroutes) in routes.iter().enumerate() {
            for (idx, r) in picroutes.iter().enumerate() {
                if r.is_some() {
                    worlds[pic].capture[idx] = true;
                    worlds[pic].reserve_relay(idx, 64);
                }
            }
            for (idx, fed) in relay_fed[pic].iter().enumerate() {
                if *fed {
                    worlds[pic].reserve_relay(idx, 64);
                }
            }
        }

        let warmup = piconets
            .iter()
            .map(|c| SimTime::ZERO + c.warmup)
            .max()
            .expect("at least one piconet");
        let world = ScatterWorld {
            worlds,
            routes,
            chains,
            warmup,
        };
        Ok(ScatternetSim {
            sim: Simulator::with_queue(world, EventQueue::new()),
            arena,
            relay_fed,
        })
    }

    /// The sharded flow arena (global id routing) of this scatternet.
    pub fn arena(&self) -> &ShardedFlowArena {
        &self.arena
    }

    /// Registers the traffic source of one flow, resolved through the
    /// global id space.
    ///
    /// # Errors
    ///
    /// Returns an error if the id is unknown, already has a source, or
    /// names a relay-fed hop (those are fed by the previous hop).
    pub fn add_source(&mut self, source: Box<dyn Source>) -> Result<(), PiconetError> {
        let id = source.flow();
        if let Some((pic, idx)) = self.arena.route(id) {
            if self.relay_fed[pic.index()][idx.get()] {
                return Err(PiconetError(format!(
                    "flow {id} is relay-fed; it cannot also have a source"
                )));
            }
            return self.sim.state_mut().worlds[pic.index()].add_source(source);
        }
        // SCO voice flows are not in the arena: route to the world whose
        // SCO binding claims the id.
        let worlds = &mut self.sim.state_mut().worlds;
        match worlds.iter().position(|w| w.has_sco_voice(id)) {
            Some(pic) => worlds[pic].add_source(source),
            None => Err(PiconetError(format!("no flow {id} configured"))),
        }
    }

    /// Runs the scatternet until `horizon` and returns the report.
    /// (Consuming `self` makes a second run unrepresentable.)
    ///
    /// # Errors
    ///
    /// Returns an error if a non-relay-fed flow lacks a source or a
    /// warm-up reaches past the horizon.
    pub fn run(self, horizon: SimTime) -> Result<ScatternetReport, PiconetError> {
        self.run_probed(horizon, horizon, &mut || {})
    }

    /// Runs to `horizon`, invoking `probe` when the clock reaches
    /// `checkpoint` and once more when the run loop finishes (before report
    /// assembly) — the same bracketing hook as
    /// [`PiconetSim::run_probed`](crate::PiconetSim::run_probed), used by
    /// the zero-allocation gate.
    ///
    /// # Errors
    ///
    /// See [`ScatternetSim::run`].
    pub fn run_probed(
        mut self,
        checkpoint: SimTime,
        horizon: SimTime,
        probe: &mut dyn FnMut(),
    ) -> Result<ScatternetReport, PiconetError> {
        // `self` is consumed, so a sim cannot run twice by construction.
        let (sched, sw) = self.sim.split_mut();
        for (pic, w) in sw.worlds.iter_mut().enumerate() {
            let fed = &self.relay_fed[pic];
            w.check_sources(&|idx| fed[idx])?;
            w.check_horizon(horizon)?;
            w.horizon = horizon;
            let mut ctx = PicCtx {
                sched: &mut *sched,
                pic: pic as u8,
            };
            seed_world(&mut ctx, w);
        }

        self.sim.run_until(checkpoint, handle_scatter);
        probe();
        self.sim.run_until(horizon, handle_scatter);
        probe();

        let events_processed = self.sim.events_processed();
        let sw = self.sim.into_state();
        let piconets = sw
            .worlds
            .into_iter()
            .map(|w| w.into_report(horizon, 0))
            .collect();
        let chains = sw
            .chains
            .into_iter()
            .map(|c| ChainReport {
                hops: c.hops,
                relayed_packets: c.relayed,
                delivered_packets: c.delivered,
                e2e: c.e2e,
                residence: c.residence,
            })
            .collect();
        Ok(ScatternetReport {
            piconets,
            chains,
            events_processed,
        })
    }
}
