//! Randomized property tests of the [`FlowTable`] invariants, driven by the
//! workspace's deterministic RNG so every platform checks the same cases.
//!
//! Invariants:
//! * `idx_of` ∘ `id` and `id` ∘ `idx_of` are identities (idx ↔ id round
//!   trip);
//! * `at(slave, direction, channel)` agrees with a linear scan;
//! * the per-slave lists are sorted, disjoint, and jointly complete;
//! * the slave lists (overall and per channel) are sorted and exact.

use btgs_baseband::{AmAddr, Direction, LogicalChannel};
use btgs_des::DetRng;
use btgs_piconet::{FlowIdx, FlowSpec, FlowTable};
use btgs_traffic::FlowId;

/// Generates a valid flow set: unique ids, at most one flow per
/// `(slave, direction, channel)` triple, in random order.
fn random_flows(rng: &mut DetRng) -> Vec<FlowSpec> {
    let mut triples = Vec::new();
    for slave in 1..=7u8 {
        for direction in [Direction::MasterToSlave, Direction::SlaveToMaster] {
            for channel in [
                LogicalChannel::GuaranteedService,
                LogicalChannel::BestEffort,
            ] {
                triples.push((AmAddr::new(slave).unwrap(), direction, channel));
            }
        }
    }
    rng.shuffle(&mut triples);
    let n = rng.below(triples.len() as u64 + 1) as usize;
    let mut ids: Vec<u32> = (0..n as u32).map(|i| i * 3 + rng.below(3) as u32).collect();
    rng.shuffle(&mut ids);
    triples[..n]
        .iter()
        .zip(ids)
        .map(|(&(slave, direction, channel), id)| {
            FlowSpec::new(FlowId(id), slave, direction, channel)
        })
        .collect()
}

#[test]
fn idx_id_round_trip() {
    let mut rng = DetRng::seed_from_u64(0xF70A);
    for _ in 0..256 {
        let flows = random_flows(&mut rng);
        let table = FlowTable::new(flows.clone()).expect("valid set");
        assert_eq!(table.len(), flows.len());
        assert_eq!(table.specs(), &flows[..]);
        for (i, f) in flows.iter().enumerate() {
            let idx = table.idx_of(f.id).expect("configured flow resolves");
            assert_eq!(idx, FlowIdx(i as u32), "indices follow configuration order");
            assert_eq!(table.id(idx), f.id, "id(idx_of(id)) == id");
            assert_eq!(table.spec(idx), f);
        }
        // Unknown ids miss.
        assert!(table.idx_of(FlowId(9_999)).is_none());
    }
}

#[test]
fn key_lookup_agrees_with_linear_scan() {
    let mut rng = DetRng::seed_from_u64(0xF70B);
    for _ in 0..256 {
        let flows = random_flows(&mut rng);
        let table = FlowTable::new(flows.clone()).expect("valid set");
        for slave in (1..=7u8).map(|n| AmAddr::new(n).unwrap()) {
            for direction in [Direction::MasterToSlave, Direction::SlaveToMaster] {
                for channel in [
                    LogicalChannel::GuaranteedService,
                    LogicalChannel::BestEffort,
                ] {
                    let linear = flows.iter().position(|f| {
                        f.slave == slave && f.direction == direction && f.channel == channel
                    });
                    assert_eq!(
                        table.at(slave, direction, channel),
                        linear.map(|i| FlowIdx(i as u32))
                    );
                }
            }
        }
    }
}

#[test]
fn per_slave_lists_sorted_and_complete() {
    let mut rng = DetRng::seed_from_u64(0xF70C);
    for _ in 0..256 {
        let flows = random_flows(&mut rng);
        let table = FlowTable::new(flows.clone()).expect("valid set");
        let mut covered = 0usize;
        for slave in (1..=7u8).map(|n| AmAddr::new(n).unwrap()) {
            let list = table.flows_of(slave);
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "per-slave list must be strictly increasing"
            );
            for &idx in list {
                assert_eq!(table.spec(idx).slave, slave, "list holds only own flows");
            }
            // Completeness: every flow of this slave appears.
            let expect = flows.iter().filter(|f| f.slave == slave).count();
            assert_eq!(list.len(), expect);
            covered += list.len();
        }
        assert_eq!(covered, table.len(), "per-slave lists partition the table");
    }
}

#[test]
fn slave_lists_sorted_and_exact() {
    let mut rng = DetRng::seed_from_u64(0xF70D);
    for _ in 0..256 {
        let flows = random_flows(&mut rng);
        let table = FlowTable::new(flows.clone()).expect("valid set");
        let sorted = |s: &[AmAddr]| s.windows(2).all(|w| w[0] < w[1]);
        assert!(sorted(table.slaves()));
        let mut expect: Vec<AmAddr> = flows.iter().map(|f| f.slave).collect();
        expect.sort();
        expect.dedup();
        assert_eq!(table.slaves(), &expect[..]);
        for channel in [
            LogicalChannel::GuaranteedService,
            LogicalChannel::BestEffort,
        ] {
            let list = table.slaves_on(channel);
            assert!(sorted(list));
            let mut expect: Vec<AmAddr> = flows
                .iter()
                .filter(|f| f.channel == channel)
                .map(|f| f.slave)
                .collect();
            expect.sort();
            expect.dedup();
            assert_eq!(list, &expect[..]);
        }
    }
}

#[test]
fn invalid_sets_are_rejected() {
    let s = |n| AmAddr::new(n).unwrap();
    // Duplicate id.
    assert!(FlowTable::new(vec![
        FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort
        ),
        FlowSpec::new(
            FlowId(1),
            s(2),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort
        ),
    ])
    .is_err());
    // Colliding (slave, direction, channel).
    assert!(FlowTable::new(vec![
        FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort
        ),
        FlowSpec::new(
            FlowId(2),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort
        ),
    ])
    .is_err());
}
