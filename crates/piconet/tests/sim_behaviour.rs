//! Behavioural tests of the piconet simulator: slot-grid discipline,
//! master ignorance, logical-channel separation, and exchange accounting.

use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType, SLOT_PAIR};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_piconet::{
    ExchangeReport, FlowSpec, MasterView, PiconetConfig, PiconetSim, PollDecision, Poller,
    SegmentOutcome,
};
use btgs_traffic::{CbrSource, FlowId, TraceSource};
use std::sync::{Arc, Mutex};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

/// A poller that records every exchange it observes.
struct Recorder {
    inner: Box<dyn Poller>,
    log: Arc<Mutex<Vec<ExchangeReport>>>,
}

impl Poller for Recorder {
    fn decide(&mut self, now: SimTime, view: &MasterView<'_>) -> PollDecision {
        self.inner.decide(now, view)
    }
    fn on_exchange(&mut self, report: &ExchangeReport) {
        self.log.lock().unwrap().push(*report);
        self.inner.on_exchange(report);
    }
    fn name(&self) -> &'static str {
        "recorder"
    }
}

/// A poller that always polls one slave on one channel.
struct FixedTarget {
    slave: AmAddr,
    channel: LogicalChannel,
}

impl Poller for FixedTarget {
    fn decide(&mut self, _now: SimTime, _view: &MasterView<'_>) -> PollDecision {
        PollDecision::Poll {
            slave: self.slave,
            channel: self.channel,
        }
    }
    fn on_exchange(&mut self, _report: &ExchangeReport) {}
    fn name(&self) -> &'static str {
        "fixed-target"
    }
}

fn one_uplink_flow(channel: LogicalChannel) -> PiconetConfig {
    PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3]).with_flow(FlowSpec::new(
        FlowId(1),
        s(1),
        Direction::SlaveToMaster,
        channel,
    ))
}

#[test]
fn exchanges_start_on_even_slot_boundaries() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let poller = Recorder {
        inner: Box::new(FixedTarget {
            slave: s(1),
            channel: LogicalChannel::BestEffort,
        }),
        log: Arc::clone(&log),
    };
    let mut sim = PiconetSim::new(
        one_uplink_flow(LogicalChannel::BestEffort),
        Box::new(poller),
        Box::new(IdealChannel),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(1),
        SimDuration::from_millis(7), // deliberately off the slot grid
        176,
        176,
        DetRng::seed_from_u64(3),
    )))
    .unwrap();
    let _ = sim.run(SimTime::from_secs(1)).unwrap();
    let log = log.lock().unwrap();
    assert!(log.len() > 100);
    for ex in log.iter() {
        assert_eq!(
            ex.start.as_nanos() % SLOT_PAIR.as_nanos(),
            0,
            "master TX at {} is off the even-slot grid",
            ex.start
        );
        assert_eq!(ex.end.as_nanos() % SLOT_PAIR.as_nanos(), 0);
        assert!(ex.end > ex.start);
    }
}

#[test]
fn uplink_data_needs_to_precede_the_poll() {
    // A packet arriving mid-poll must wait for the next poll: with a
    // saturating poller the packet arriving at t=1 ms (inside the first
    // 2-slot exchange that started at t=0) is served by the poll at 2.5 ms,
    // not the one at 0.
    let log = Arc::new(Mutex::new(Vec::new()));
    let poller = Recorder {
        inner: Box::new(FixedTarget {
            slave: s(1),
            channel: LogicalChannel::BestEffort,
        }),
        log: Arc::clone(&log),
    };
    let mut sim = PiconetSim::new(
        one_uplink_flow(LogicalChannel::BestEffort),
        Box::new(poller),
        Box::new(IdealChannel),
    )
    .unwrap();
    sim.add_source(Box::new(TraceSource::new(
        FlowId(1),
        vec![(SimTime::from_millis(1), 176)],
    )))
    .unwrap();
    let report = sim.run(SimTime::from_millis(100)).unwrap();
    assert_eq!(report.flow(FlowId(1)).delivered_packets, 1);
    let log = log.lock().unwrap();
    // Find the exchange that carried data.
    let carrying = log
        .iter()
        .find(|ex| matches!(ex.up, SegmentOutcome::Data { .. }))
        .expect("one exchange carried the packet");
    assert!(
        carrying.start >= SimTime::from_millis(1),
        "served at {} before the data existed",
        carrying.start
    );
    // The exchange at t=0 must have returned NULL even though the packet
    // arrived before that exchange *ended*.
    let first = &log[0];
    assert_eq!(first.start, SimTime::ZERO);
    assert!(matches!(first.up, SegmentOutcome::Control { ty } if ty == PacketType::Null));
}

#[test]
fn gs_polls_never_move_be_data() {
    // A slave with only a BE uplink flow, polled on the GS channel: every
    // exchange must come back NULL (logical-channel separation).
    let log = Arc::new(Mutex::new(Vec::new()));
    let poller = Recorder {
        inner: Box::new(FixedTarget {
            slave: s(1),
            channel: LogicalChannel::GuaranteedService,
        }),
        log: Arc::clone(&log),
    };
    let mut sim = PiconetSim::new(
        one_uplink_flow(LogicalChannel::BestEffort),
        Box::new(poller),
        Box::new(IdealChannel),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(1),
        SimDuration::from_millis(10),
        176,
        176,
        DetRng::seed_from_u64(5),
    )))
    .unwrap();
    let report = sim.run(SimTime::from_secs(1)).unwrap();
    assert_eq!(
        report.flow(FlowId(1)).delivered_packets,
        0,
        "BE data must never ride a GS poll"
    );
    assert!(log.lock().unwrap().iter().all(|ex| !ex.successful()));
    // All those empty polls are accounted as GS overhead.
    assert!(report.ledger.gs_overhead > 0);
    assert_eq!(report.ledger.be_data, 0);
}

#[test]
fn downlink_and_uplink_can_share_one_exchange() {
    // A bidirectional BE pair on one slave: a single poll moves data both
    // ways (the physical basis of the paper's piggybacking argument).
    let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_flow(FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        ))
        .with_flow(FlowSpec::new(
            FlowId(2),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ));
    let log = Arc::new(Mutex::new(Vec::new()));
    let poller = Recorder {
        inner: Box::new(FixedTarget {
            slave: s(1),
            channel: LogicalChannel::BestEffort,
        }),
        log: Arc::clone(&log),
    };
    let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(IdealChannel)).unwrap();
    for id in [1u32, 2] {
        sim.add_source(Box::new(TraceSource::new(
            FlowId(id),
            vec![(SimTime::ZERO, 150)],
        )))
        .unwrap();
    }
    let report = sim.run(SimTime::from_millis(50)).unwrap();
    assert_eq!(report.flow(FlowId(1)).delivered_packets, 1);
    assert_eq!(report.flow(FlowId(2)).delivered_packets, 1);
    let log = log.lock().unwrap();
    let both = &log[0];
    assert!(
        matches!(both.down, SegmentOutcome::Data { .. })
            && matches!(both.up, SegmentOutcome::Data { .. }),
        "first exchange should carry data both ways: {both:?}"
    );
    // DH3 down + DH3 up = 6 slots = 3.75 ms.
    assert_eq!(both.end - both.start, SimDuration::from_micros(3_750));
}

#[test]
fn sleep_poller_leaves_the_channel_idle() {
    struct Sleeper;
    impl Poller for Sleeper {
        fn decide(&mut self, _now: SimTime, _view: &MasterView<'_>) -> PollDecision {
            PollDecision::Sleep
        }
        fn on_exchange(&mut self, _report: &ExchangeReport) {}
        fn name(&self) -> &'static str {
            "sleeper"
        }
    }
    let mut sim = PiconetSim::new(
        one_uplink_flow(LogicalChannel::BestEffort),
        Box::new(Sleeper),
        Box::new(IdealChannel),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(1),
        SimDuration::from_millis(10),
        176,
        176,
        DetRng::seed_from_u64(1),
    )))
    .unwrap();
    let report = sim.run(SimTime::from_secs(1)).unwrap();
    assert_eq!(report.ledger.used(), 0);
    assert_eq!(
        report.ledger.idle_in(report.window()),
        1600,
        "every slot of the second stays idle"
    );
    assert_eq!(report.flow(FlowId(1)).delivered_packets, 0);
}

#[test]
fn missing_source_is_rejected_at_run() {
    let sim = PiconetSim::new(
        one_uplink_flow(LogicalChannel::BestEffort),
        Box::new(FixedTarget {
            slave: s(1),
            channel: LogicalChannel::BestEffort,
        }),
        Box::new(IdealChannel),
    )
    .unwrap();
    let err = sim.run(SimTime::from_secs(1)).unwrap_err();
    assert!(err.to_string().contains("no source"));
}

#[test]
fn duplicate_source_is_rejected() {
    let mut sim = PiconetSim::new(
        one_uplink_flow(LogicalChannel::BestEffort),
        Box::new(FixedTarget {
            slave: s(1),
            channel: LogicalChannel::BestEffort,
        }),
        Box::new(IdealChannel),
    )
    .unwrap();
    let mk = || {
        Box::new(CbrSource::new(
            FlowId(1),
            SimDuration::from_millis(10),
            176,
            176,
            DetRng::seed_from_u64(1),
        ))
    };
    sim.add_source(mk()).unwrap();
    assert!(sim.add_source(mk()).is_err());
    // Unknown flow ids are rejected too.
    let unknown = Box::new(CbrSource::new(
        FlowId(99),
        SimDuration::from_millis(10),
        176,
        176,
        DetRng::seed_from_u64(1),
    ));
    assert!(sim.add_source(unknown).is_err());
}
