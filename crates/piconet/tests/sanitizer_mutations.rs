//! The seeded-mutation corpus: proof that the causality sanitizer and the
//! divergence bisector have teeth.
//!
//! Every [`EngineMutation`] — a deliberately broken engine variant behind
//! a test-only hook — must be (a) *caught* by the sanitizer with the
//! expected check on at least one corpus scenario, and (b) *localized* by
//! the bisector to a first diverging event against the clean engine on
//! that same scenario. The clean engine must produce zero findings across
//! every corpus topology (chain, ring, mesh) at 1, 2 and 4 threads, and
//! attaching the sanitizer must not move a single report byte — the
//! instrumentation observes the simulation, never steers it.
//!
//! The corpus scenarios come from [`btgs_core::sanitizer_corpus`], the
//! same trio the `btgs-analyze -- --bisect` CLI and CI's sanitized smoke
//! run use.

use btgs_core::{sanitizer_corpus, PollerKind, ScatternetScenario, ScatternetScenarioParams};
use btgs_des::SimTime;
use btgs_piconet::{bisect_runs, EngineMutation, SanitizerCheck, ScatternetSim};

/// The engine-observability counters excluded from byte-identity, exactly
/// as in `tests/parallel_equivalence.rs`.
const ENGINE_COUNTERS: [&str; 7] = [
    "phases_run",
    "barrier_rounds",
    "islands_claimed",
    "relays_staged",
    "widening_stretches",
    "islands_skipped_idle",
    "relays_injected",
];

const HORIZON: SimTime = SimTime::from_millis(1500);

fn build_sim(params: ScatternetScenarioParams, threads: usize) -> ScatternetSim {
    ScatternetScenario::build(params)
        .simulator(PollerKind::PfpGs)
        .expect("corpus scenario builds")
        .with_threads(threads)
}

fn digest(report: &btgs_piconet::ScatternetReport) -> String {
    format!("{report:#?}")
        .lines()
        .filter(|l| !ENGINE_COUNTERS.iter().any(|c| l.contains(c)))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The sanitizer check each mutation must trip.
fn expected_check(m: EngineMutation) -> SanitizerCheck {
    match m {
        EngineMutation::BoundaryOffByOne => SanitizerCheck::WideningBoundary,
        EngineMutation::RelayBehindClock => SanitizerCheck::LookaheadSafety,
        EngineMutation::UnsortedStagingDrain => SanitizerCheck::InjectionOrder,
        EngineMutation::WideningPastHotBoundary => SanitizerCheck::WideningBoundary,
        EngineMutation::DroppedRelay => SanitizerCheck::Conservation,
        EngineMutation::DuplicatedRelay => SanitizerCheck::Conservation,
    }
}

#[test]
fn clean_engine_has_zero_findings_across_corpus() {
    for (label, params) in sanitizer_corpus() {
        for threads in [1usize, 2, 4] {
            let run = build_sim(params, threads)
                .run_sanitized(HORIZON)
                .expect("clean corpus run succeeds");
            assert!(
                run.sanitizer.clean(),
                "{label} at {threads} threads: clean engine produced findings:\n{:#?}",
                run.sanitizer.findings
            );
            assert!(
                run.report.is_some(),
                "{label} at {threads} threads: clean sanitized run must keep its report"
            );
            assert!(
                run.sanitizer.events_checked > 0,
                "{label}: sanitizer observed no events — the probe seam is dead"
            );
            assert!(
                run.sanitizer.relays_tracked > 0,
                "{label}: sanitizer tracked no relays — corpus traffic never bridges"
            );
            // Conservation, now confirmable from the report alone: every
            // staged relay was injected or is still pooled at the horizon.
            let report = run.report.as_ref().expect("checked above");
            assert!(
                report.relays_injected <= report.relays_staged,
                "{label}: more relays injected than staged"
            );
            assert_eq!(
                report.relays_staged,
                report.relays_injected + run.sanitizer.relays_leftover,
                "{label} at {threads} threads: staged relays neither injected \
                 nor pooled at the horizon"
            );
        }
    }
}

#[test]
fn sanitizer_leaves_report_bytes_unchanged() {
    for (label, params) in sanitizer_corpus() {
        let plain = build_sim(params, 2).run(HORIZON).expect("plain run");
        let sanitized = build_sim(params, 2)
            .run_sanitized(HORIZON)
            .expect("sanitized run");
        assert_eq!(
            digest(&plain),
            digest(sanitized.report.as_ref().expect("clean run keeps report")),
            "{label}: enabling the sanitizer moved report bytes"
        );
    }
}

#[test]
fn every_mutation_is_caught_and_bisector_localized() {
    for mutation in EngineMutation::ALL {
        let want = expected_check(mutation);
        let mut caught_on: Option<&'static str> = None;
        for (label, params) in sanitizer_corpus() {
            let run = build_sim(params, 1)
                .with_mutation(mutation)
                .run_sanitized(HORIZON)
                .expect("mutated corpus run completes");
            if run.sanitizer.clean() {
                continue;
            }
            assert!(
                run.sanitizer.findings.iter().any(|f| f.check == want),
                "{label}: mutation {} caught, but not by the {want} check:\n{:#?}",
                mutation.name(),
                run.sanitizer.findings
            );
            assert!(
                run.report.is_none(),
                "{label}: a tripped sanitized run must withhold its report"
            );

            // The bisector must localize the same break without any
            // sanitizer attached: clean vs mutated traces diverge at a
            // concrete first event.
            let bisect = bisect_runs(
                &|| build_sim(params, 1),
                &|| build_sim(params, 1).with_mutation(mutation),
                HORIZON,
                8,
            )
            .expect("bisection runs");
            let div = bisect.divergence.as_ref().unwrap_or_else(|| {
                panic!(
                    "{label}: mutation {} tripped the sanitizer but left \
                     byte-identical traces",
                    mutation.name()
                )
            });
            let rendered = bisect.render();
            assert!(
                rendered.contains("first divergence"),
                "render must name the divergence:\n{rendered}"
            );
            assert!(
                !div.window_a.is_empty() || !div.window_b.is_empty(),
                "{label}: divergence window is empty:\n{rendered}"
            );
            caught_on = Some(label);
            break;
        }
        assert!(
            caught_on.is_some(),
            "mutation {} was not caught on any corpus scenario",
            mutation.name()
        );
    }
}

#[test]
fn mutations_are_caught_under_parallel_execution_too() {
    // The drop mutation exercises the coordinator's pooled-drain path in
    // both engines; catching it at 4 threads proves the sanitizer seam
    // rides through `run_phases_par`, not just the sequential loop.
    let (_, params) = sanitizer_corpus()[0];
    let run = build_sim(params, 4)
        .with_mutation(EngineMutation::DroppedRelay)
        .run_sanitized(HORIZON)
        .expect("mutated parallel run completes");
    assert!(
        run.sanitizer
            .findings
            .iter()
            .any(|f| f.check == SanitizerCheck::Conservation),
        "parallel drop not caught: {:#?}",
        run.sanitizer.findings
    );
}
