//! Deterministic property tests for the scatternet layer, in the style of
//! `flow_table_properties.rs`: DetRng-driven random instances instead of a
//! proptest dependency.
//!
//! Covered:
//! * the sharded arena — global-id ↔ `(piconet, index)` round-trips, no
//!   cross-shard aliasing;
//! * bridge forwarding — per-flow FIFO across the hop, and the end-to-end
//!   identity `e2e = Σ per-hop queueing + Σ bridge residence` (exact, via
//!   sample sums);
//! * a 1-piconet scatternet is observationally identical to `PiconetSim`.

use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PiconetId, ScopedSlave};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_piconet::{
    BridgeSpec, ChainSpec, FlowSpec, FlowTable, MasterView, PiconetConfig, PiconetSim,
    PollDecision, Poller, RunReport, ScatternetConfig, ScatternetSim, ShardedFlowArena,
};
use btgs_traffic::{CbrSource, FlowId, Source, TraceSource};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

fn pic(n: u8) -> PiconetId {
    PiconetId(n.into())
}

/// Builds a random valid multi-shard flow layout: every flow id unique
/// across shards, at most one flow per (slave, direction, channel) within a
/// shard.
fn random_shards(rng: &mut DetRng, n_shards: usize) -> Vec<Vec<FlowSpec>> {
    let mut next_id = 1 + rng.below(50) as u32;
    let mut shards = Vec::new();
    for _ in 0..n_shards {
        let mut flows = Vec::new();
        for slave in 1..=7u8 {
            for direction in [Direction::MasterToSlave, Direction::SlaveToMaster] {
                for channel in [
                    LogicalChannel::GuaranteedService,
                    LogicalChannel::BestEffort,
                ] {
                    if rng.chance(0.35) {
                        flows.push(FlowSpec::new(FlowId(next_id), s(slave), direction, channel));
                        next_id += 1 + rng.below(4) as u32;
                    }
                }
            }
        }
        shards.push(flows);
    }
    shards
}

#[test]
fn arena_round_trips_every_global_id() {
    let mut rng = DetRng::seed_from_u64(0xA7E7A);
    for case in 0..50 {
        let n_shards = 1 + rng.below(5) as usize;
        let layouts = random_shards(&mut rng, n_shards);
        let tables: Vec<FlowTable> = layouts
            .iter()
            .map(|f| FlowTable::new(f.clone()).expect("layout is valid"))
            .collect();
        let arena = ShardedFlowArena::new(tables).expect("unique ids");
        let total: usize = layouts.iter().map(Vec::len).sum();
        assert_eq!(arena.len(), total, "case {case}");
        assert_eq!(arena.num_shards(), n_shards);
        for (p, flows) in layouts.iter().enumerate() {
            for f in flows {
                // id -> (piconet, idx) -> id round-trip.
                let (rp, idx) = arena
                    .route(f.id)
                    .unwrap_or_else(|| panic!("case {case}: {} unroutable", f.id));
                assert_eq!(rp, pic(p as u8), "case {case}: {} in wrong shard", f.id);
                assert_eq!(arena.shard(rp).id(idx), f.id);
                assert_eq!(arena.spec_of(f.id).unwrap(), f);
            }
        }
    }
}

#[test]
fn arena_rejects_cross_shard_aliasing_and_misses_unknown_ids() {
    let mut rng = DetRng::seed_from_u64(0xBEEF);
    for _ in 0..50 {
        let n_shards = 1 + rng.below(4) as usize;
        let layouts = random_shards(&mut rng, n_shards);
        let all_ids: Vec<FlowId> = layouts.iter().flatten().map(|f| f.id).collect();
        if all_ids.is_empty() {
            continue;
        }
        let tables: Vec<FlowTable> = layouts
            .iter()
            .map(|f| FlowTable::new(f.clone()).unwrap())
            .collect();
        let arena = ShardedFlowArena::new(tables.clone()).unwrap();
        // Ids not in any shard miss.
        let max = all_ids.iter().map(|i| i.0).max().unwrap();
        assert!(arena.route(FlowId(max + 1)).is_none());
        assert!(arena.route(FlowId(max + 999)).is_none());
        // Duplicating any shard aliases every one of its ids: rejected.
        let dup = tables.iter().find(|t| !t.is_empty()).map(|t| {
            let mut v = tables.clone();
            v.push(t.clone());
            v
        });
        if let Some(aliased) = dup {
            assert!(
                ShardedFlowArena::new(aliased).is_err(),
                "aliased ids must be rejected"
            );
        }
    }
}

/// A minimal presence-aware GS poller for chain tests: polls its slave's GS
/// channel whenever the slave is reachable, idles until its return
/// otherwise.
struct ChainTestPoller {
    slaves: Vec<AmAddr>,
    cursor: usize,
}

impl ChainTestPoller {
    fn new(slaves: Vec<AmAddr>) -> ChainTestPoller {
        ChainTestPoller { slaves, cursor: 0 }
    }
}

impl Poller for ChainTestPoller {
    fn decide(&mut self, _now: SimTime, view: &MasterView<'_>) -> PollDecision {
        for _ in 0..self.slaves.len() {
            let slave = self.slaves[self.cursor % self.slaves.len()];
            self.cursor += 1;
            if view.is_present(slave) {
                return PollDecision::Poll {
                    slave,
                    channel: LogicalChannel::GuaranteedService,
                };
            }
        }
        let until = self
            .slaves
            .iter()
            .map(|&sl| view.next_present(sl))
            .min()
            .expect("non-empty");
        PollDecision::Idle { until }
    }

    fn on_exchange(&mut self, _report: &btgs_piconet::ExchangeReport) {}

    fn name(&self) -> &'static str {
        "chain-test"
    }
}

/// A two-piconet scatternet with one bridged GS chain:
/// `M0 -> bridge (P0, S7)` then `bridge (P1, S7) -> M1`.
fn two_piconet_chain() -> ScatternetConfig {
    let allowed = vec![
        btgs_baseband::PacketType::Dh1,
        btgs_baseband::PacketType::Dh3,
    ];
    let p0 = PiconetConfig::new(allowed.clone()).with_flow(FlowSpec::new(
        FlowId(901),
        s(7),
        Direction::MasterToSlave,
        LogicalChannel::GuaranteedService,
    ));
    let p1 = PiconetConfig::new(allowed).with_flow(FlowSpec::new(
        FlowId(902),
        s(7),
        Direction::SlaveToMaster,
        LogicalChannel::GuaranteedService,
    ));
    ScatternetConfig {
        piconets: vec![p0, p1],
        bridges: vec![BridgeSpec {
            upstream: ScopedSlave::new(pic(0), s(7)),
            downstream: ScopedSlave::new(pic(1), s(7)),
            cycle: SimDuration::from_millis(20),
            dwell_upstream: SimDuration::from_millis(10),
        }],
        chains: vec![ChainSpec::new(vec![FlowId(901), FlowId(902)])],
    }
}

fn chain_sim(config: ScatternetConfig) -> ScatternetSim {
    let pollers: Vec<Box<dyn Poller>> = vec![
        Box::new(ChainTestPoller::new(vec![s(7)])),
        Box::new(ChainTestPoller::new(vec![s(7)])),
    ];
    let channels: Vec<Box<dyn btgs_baseband::ChannelModel>> =
        vec![Box::new(IdealChannel), Box::new(IdealChannel)];
    ScatternetSim::new(config, pollers, channels).expect("valid scatternet")
}

#[test]
fn bridged_chain_delivers_end_to_end() {
    let mut sim = chain_sim(two_piconet_chain());
    sim.add_source(Box::new(CbrSource::new(
        FlowId(901),
        SimDuration::from_millis(20),
        144,
        176,
        DetRng::seed_from_u64(7),
    )))
    .unwrap();
    let report = sim.run(SimTime::from_secs(2)).unwrap();

    let chain = &report.chains[0];
    assert!(
        chain.delivered_packets >= 90,
        "a 2 s run at 50 pkt/s should deliver most packets, got {}",
        chain.delivered_packets
    );
    assert!(chain.relayed_packets >= chain.delivered_packets);
    assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
    // Residence is bounded by the bridge's absence stretch (10 ms) and the
    // end-to-end delay includes at least one residence wait.
    assert!(chain.residence.max().unwrap() <= SimDuration::from_millis(10));
    assert!(chain.e2e.min().unwrap() > SimDuration::ZERO);

    // Per-hop stats exist in the per-piconet reports.
    let hop0 = report.piconet(pic(0)).flow(FlowId(901));
    let hop1 = report.piconet(pic(1)).flow(FlowId(902));
    assert!(hop0.delivered_packets >= chain.delivered_packets);
    assert_eq!(hop1.delivered_packets, chain.delivered_packets);
}

#[test]
fn end_to_end_equals_hop_delays_plus_residence_exactly() {
    // Zero warm-up so every sample set covers the same packets; random
    // jittered trace so segmentation and timing vary.
    let mut rng = DetRng::seed_from_u64(42);
    for case in 0..10 {
        let mut items = Vec::new();
        let mut t = SimTime::from_millis(rng.below(5));
        for _ in 0..40 {
            t += SimDuration::from_micros(5_000 + rng.below(40_000));
            items.push((t, 100 + rng.below(300) as u32));
        }
        let mut sim = chain_sim(two_piconet_chain());
        sim.add_source(Box::new(TraceSource::new(FlowId(901), items)))
            .unwrap();
        let report = sim.run(SimTime::from_secs(4)).unwrap();

        let chain = &report.chains[0];
        let hop0 = &report.piconet(pic(0)).flow(FlowId(901)).delay;
        let hop1 = &report.piconet(pic(1)).flow(FlowId(902)).delay;
        assert_eq!(chain.delivered_packets, 40, "case {case}: all delivered");
        assert_eq!(hop0.count(), 40);
        assert_eq!(hop1.count(), 40);
        assert_eq!(chain.e2e.count(), 40);
        // The identity holds sample-for-sample, so it holds for the exact
        // sums: e2e_i = hop0_i + residence_i + hop1_i.
        assert_eq!(
            chain.e2e.sum_nanos(),
            hop0.sum_nanos() + chain.residence.sum_nanos() + hop1.sum_nanos(),
            "case {case}: end-to-end must equal hop queueing plus residence"
        );
        // FIFO across the hop: the uplink hop delivered every packet the
        // downlink hop completed, in order (a reorder would desynchronise
        // the origin FIFO and panic or corrupt the counts above).
        assert_eq!(chain.relayed_packets, 40);
    }
}

#[test]
fn chain_counters_share_one_measurement_window() {
    // With a non-zero warm-up, packets straddling the boundary must not
    // smear across the chain statistics: e2e, residence and both counters
    // cover exactly the packets whose *origin* cleared warm-up.
    let mut config = two_piconet_chain();
    for cfg in &mut config.piconets {
        cfg.warmup = SimDuration::from_millis(500);
    }
    let mut sim = chain_sim(config);
    sim.add_source(Box::new(CbrSource::new(
        FlowId(901),
        SimDuration::from_millis(20),
        144,
        176,
        DetRng::seed_from_u64(3),
    )))
    .unwrap();
    let report = sim.run(SimTime::from_secs(3)).unwrap();
    let chain = &report.chains[0];
    assert!(chain.delivered_packets > 50);
    assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
    // Every counted forward of this 2-hop chain is a bridge crossing, so
    // the residence sample count equals the relayed counter exactly.
    assert_eq!(chain.residence.count() as u64, chain.relayed_packets);
    // Relays lead deliveries only by the packets still in flight.
    assert!(chain.relayed_packets >= chain.delivered_packets);
    assert!(chain.relayed_packets <= chain.delivered_packets + 2);
}

#[test]
fn chain_validation_rejects_broken_topologies() {
    // Missing bridge.
    let mut config = two_piconet_chain();
    config.bridges.clear();
    let pollers: Vec<Box<dyn Poller>> = vec![
        Box::new(ChainTestPoller::new(vec![s(7)])),
        Box::new(ChainTestPoller::new(vec![s(7)])),
    ];
    let channels: Vec<Box<dyn btgs_baseband::ChannelModel>> =
        vec![Box::new(IdealChannel), Box::new(IdealChannel)];
    let err = match ScatternetSim::new(config, pollers, channels) {
        Err(e) => e,
        Ok(_) => panic!("missing bridge must be rejected"),
    };
    assert!(err.to_string().contains("no bridge"), "{err}");

    // Wrong hop directions for a bridge crossing (uplink then downlink).
    let allowed = vec![btgs_baseband::PacketType::Dh1];
    let p0 = PiconetConfig::new(allowed.clone()).with_flow(FlowSpec::new(
        FlowId(901),
        s(7),
        Direction::SlaveToMaster,
        LogicalChannel::GuaranteedService,
    ));
    let p1 = PiconetConfig::new(allowed).with_flow(FlowSpec::new(
        FlowId(902),
        s(7),
        Direction::MasterToSlave,
        LogicalChannel::GuaranteedService,
    ));
    let config = ScatternetConfig {
        piconets: vec![p0, p1],
        bridges: vec![BridgeSpec {
            upstream: ScopedSlave::new(pic(0), s(7)),
            downstream: ScopedSlave::new(pic(1), s(7)),
            cycle: SimDuration::from_millis(20),
            dwell_upstream: SimDuration::from_millis(10),
        }],
        chains: vec![ChainSpec::new(vec![FlowId(901), FlowId(902)])],
    };
    let pollers: Vec<Box<dyn Poller>> = vec![
        Box::new(ChainTestPoller::new(vec![s(7)])),
        Box::new(ChainTestPoller::new(vec![s(7)])),
    ];
    let channels: Vec<Box<dyn btgs_baseband::ChannelModel>> =
        vec![Box::new(IdealChannel), Box::new(IdealChannel)];
    let err = match ScatternetSim::new(config, pollers, channels) {
        Err(e) => e,
        Ok(_) => panic!("wrong hop directions must be rejected"),
    };
    assert!(err.to_string().contains("downlink then uplink"), "{err}");
}

#[test]
fn relay_fed_hops_reject_sources_and_first_hops_require_them() {
    let mut sim = chain_sim(two_piconet_chain());
    // The relay-fed hop must not accept a source.
    let err = sim
        .add_source(Box::new(CbrSource::new(
            FlowId(902),
            SimDuration::from_millis(20),
            144,
            176,
            DetRng::seed_from_u64(1),
        )))
        .unwrap_err();
    assert!(err.to_string().contains("relay-fed"), "{err}");
    // Without the first-hop source the run refuses to start.
    let err = sim.run(SimTime::from_secs(1)).unwrap_err();
    assert!(err.to_string().contains("has no source"), "{err}");
}

/// Flattens the observable per-flow surface of a [`RunReport`].
fn digest(r: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for f in &r.flows {
        let fr = r.flow(f.id);
        let _ = write!(
            out,
            "{}:{}:{}:{}:{}:{};",
            f.id,
            fr.offered_packets,
            fr.delivered_packets,
            fr.delivered_bytes,
            fr.delay.count(),
            fr.delay.max().map_or_else(|| "-".into(), |d| d.to_string()),
        );
    }
    out
}

#[test]
fn one_piconet_scatternet_matches_piconet_sim_exactly() {
    let allowed = vec![
        btgs_baseband::PacketType::Dh1,
        btgs_baseband::PacketType::Dh3,
    ];
    let config = PiconetConfig::new(allowed)
        .with_flow(FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ))
        .with_flow(FlowSpec::new(
            FlowId(2),
            s(2),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        ))
        .with_warmup(SimDuration::from_millis(250));
    let source = |flow: u32, seed: u64| {
        Box::new(CbrSource::new(
            FlowId(flow),
            SimDuration::from_millis(15),
            100,
            300,
            DetRng::seed_from_u64(seed),
        )) as Box<dyn Source>
    };

    let mut single = PiconetSim::new(
        config.clone(),
        Box::new(btgs_piconet::RoundRobinForTest::default()),
        Box::new(IdealChannel),
    )
    .unwrap();
    single.add_source(source(1, 11)).unwrap();
    single.add_source(source(2, 22)).unwrap();
    let single_report = single.run(SimTime::from_secs(3)).unwrap();

    let mut scatter = ScatternetSim::new(
        ScatternetConfig {
            piconets: vec![config],
            bridges: Vec::new(),
            chains: Vec::new(),
        },
        vec![Box::new(btgs_piconet::RoundRobinForTest::default())],
        vec![Box::new(IdealChannel)],
    )
    .unwrap();
    scatter.add_source(source(1, 11)).unwrap();
    scatter.add_source(source(2, 22)).unwrap();
    let scatter_report = scatter.run(SimTime::from_secs(3)).unwrap();

    assert_eq!(
        digest(&single_report),
        digest(scatter_report.piconet(pic(0))),
        "a 1-piconet scatternet must be observationally identical"
    );
    assert!(scatter_report.chains.is_empty());
}

/// Two chains cross ONE bridge in opposite directions: the forward chain
/// rides the bridge's downstream window, the reverse chain its upstream
/// window. Both deliver, and each chain's residence samples stay within
/// the worst case of its target window (cycle − target dwell).
#[test]
fn bidirectional_chains_share_one_bridge() {
    let allowed = vec![
        btgs_baseband::PacketType::Dh1,
        btgs_baseband::PacketType::Dh3,
    ];
    let p0 = PiconetConfig::new(allowed.clone())
        .with_flow(FlowSpec::new(
            FlowId(901),
            s(7),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        ))
        .with_flow(FlowSpec::new(
            FlowId(912),
            s(7),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ));
    let p1 = PiconetConfig::new(allowed)
        .with_flow(FlowSpec::new(
            FlowId(902),
            s(7),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ))
        .with_flow(FlowSpec::new(
            FlowId(911),
            s(7),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        ));
    let cycle = SimDuration::from_millis(20);
    let dwell = SimDuration::from_millis(10);
    let config = ScatternetConfig {
        piconets: vec![p0, p1],
        bridges: vec![BridgeSpec {
            upstream: ScopedSlave::new(pic(0), s(7)),
            downstream: ScopedSlave::new(pic(1), s(7)),
            cycle,
            dwell_upstream: dwell,
        }],
        chains: vec![
            // Forward: M0 -> bridge -> M1 (crosses upstream->downstream).
            ChainSpec::new(vec![FlowId(901), FlowId(902)]),
            // Reverse: M1 -> bridge -> M0 (crosses downstream->upstream).
            ChainSpec::new(vec![FlowId(911), FlowId(912)]),
        ],
    };
    let mut sim = chain_sim(config);
    for (flow, seed) in [(901u32, 7u64), (911, 8)] {
        sim.add_source(Box::new(CbrSource::new(
            FlowId(flow),
            SimDuration::from_millis(20),
            144,
            176,
            DetRng::seed_from_u64(seed),
        )))
        .unwrap();
    }
    let report = sim.run(SimTime::from_secs(4)).unwrap();
    assert_eq!(report.chains.len(), 2);
    for (ci, chain) in report.chains.iter().enumerate() {
        assert!(
            chain.delivered_packets >= 150,
            "chain {ci}: only {} delivered over 4 s at 50 pkt/s",
            chain.delivered_packets
        );
        // Worst-case residence of either crossing direction: the target
        // window's absence gap (both are 10 ms with an even split).
        let worst = cycle - dwell;
        assert!(chain.residence.count() > 0);
        assert!(
            chain.residence.max().unwrap() <= worst,
            "chain {ci}: residence {} exceeds the analytic worst case {worst}",
            chain.residence.max().unwrap()
        );
        // e2e is still the exact sum of hop queueing and residence.
        assert_eq!(chain.e2e.count() as u64, chain.delivered_packets);
    }
}

/// `hop_intervals`, when recorded, must match the hop count.
#[test]
fn mismatched_hop_interval_record_is_rejected() {
    let mut config = two_piconet_chain();
    config.chains[0].hop_intervals = vec![SimDuration::from_millis(16)];
    let pollers: Vec<Box<dyn Poller>> = vec![
        Box::new(ChainTestPoller::new(vec![s(7)])),
        Box::new(ChainTestPoller::new(vec![s(7)])),
    ];
    let channels: Vec<Box<dyn btgs_baseband::ChannelModel>> =
        vec![Box::new(IdealChannel), Box::new(IdealChannel)];
    let err = match ScatternetSim::new(config, pollers, channels) {
        Err(e) => e,
        Ok(_) => panic!("interval/hop count mismatch must be rejected"),
    };
    assert!(err.to_string().contains("granted intervals"), "{err}");
}
