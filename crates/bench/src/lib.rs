//! # btgs-bench — experiment harness
//!
//! One binary per table/figure/claim of the paper (see `DESIGN.md` for the
//! index, `EXPERIMENTS.md` for recorded results), plus Criterion
//! micro-benchmarks of the implementation itself.
//!
//! Every binary accepts:
//!
//! * `--seconds N` — simulated seconds per run (default varies per
//!   experiment; the paper uses 530 s);
//! * `--seed N` — root RNG seed (default 1);
//! * `--step N` — sweep step in milliseconds where applicable;
//! * `--scatternet` — run the experiment's scatternet mode where one
//!   exists (currently `delay_bound_validation`).

// `deny` rather than `forbid`: `alloc_counter` implements `GlobalAlloc`
// (an inherently unsafe trait) and carries a scoped `allow`. This is the
// lint-enforced workspace policy (btgs-analyze's unsafe-policy rule):
// every sim crate `#![forbid(unsafe_code)]`, this crate `deny` with
// exactly one `allow` on that impl.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_counter;
pub mod host;
pub mod microbench;

use btgs_des::SimTime;

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct BenchArgs {
    /// Simulated duration of each run.
    pub seconds: u64,
    /// Root RNG seed.
    pub seed: u64,
    /// Sweep step (ms) where applicable.
    pub step_ms: u64,
    /// Run the experiment's scatternet mode where one exists
    /// (`--scatternet`).
    pub scatternet: bool,
}

impl BenchArgs {
    /// Parses `--seconds`, `--seed` and `--step` from `std::env::args`,
    /// with the given default duration.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_seconds: u64) -> BenchArgs {
        let mut out = BenchArgs {
            seconds: default_seconds,
            seed: 1,
            step_ms: 2,
            scatternet: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut take = |name: &str| -> u64 {
                args.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("usage: {name} <positive integer>"))
            };
            match flag.as_str() {
                "--seconds" => out.seconds = take("--seconds"),
                "--seed" => out.seed = take("--seed"),
                "--step" => out.step_ms = take("--step"),
                "--scatternet" => out.scatternet = true,
                other => {
                    panic!("unknown flag {other}; known: --seconds --seed --step --scatternet")
                }
            }
        }
        assert!(
            out.seconds > 0 && out.step_ms > 0,
            "values must be positive"
        );
        out
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.seconds)
    }
}

/// Aggregate best-effort throughput (slaves S4..S7) in kbit/s.
pub fn be_total_kbps(report: &btgs_piconet::RunReport) -> f64 {
    (4..=7u8)
        .map(|n| {
            report.slave_throughput_kbps(btgs_baseband::AmAddr::new(n).expect("S4..S7 are valid"))
        })
        .sum()
}

/// Prints the standard experiment header.
pub fn banner(title: &str, args: &BenchArgs) {
    println!("=== {title} ===");
    println!(
        "(simulated {} s per point, seed {}; paper: ns-2, 530 s, 25 000 samples/flow)",
        args.seconds, args.seed
    );
    println!();
}
