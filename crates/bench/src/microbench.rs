//! A tiny, dependency-free micro-benchmark harness with a Criterion-shaped
//! API.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `criterion` from crates.io. This module provides the subset of its
//! surface the bench files use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! `std::time::Instant` loop: a warm-up phase to calibrate the iteration
//! count, then a fixed number of timed samples, reporting the best and
//! median ns/iteration. Results print to stdout; run with
//! `cargo bench -p btgs-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock budget of one sample batch.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Timed sample batches per benchmark.
const DEFAULT_SAMPLES: usize = 12;

/// The measurement driver handed to every benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Best observed nanoseconds per iteration.
    pub best_ns: f64,
    /// Median observed nanoseconds per iteration.
    pub median_ns: f64,
}

impl Bencher {
    /// Times `f`, choosing an iteration count so one sample batch lasts
    /// about [`SAMPLE_BUDGET`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it costs a measurable slice.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let spent = start.elapsed();
            if spent >= SAMPLE_BUDGET / 4 || iters >= 1 << 30 {
                let per_iter = spent.as_secs_f64() / iters as f64;
                if per_iter > 0.0 {
                    let target = SAMPLE_BUDGET.as_secs_f64() / per_iter;
                    iters = (target as u64).clamp(1, 1 << 30);
                }
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_sample = iters;
        // Measure.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        self.best_ns = per_iter_ns[0];
        self.median_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, f64, f64)>,
}

impl Criterion {
    /// Runs one named benchmark and prints its result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_per_sample: 0,
            samples: DEFAULT_SAMPLES,
            best_ns: f64::NAN,
            median_ns: f64::NAN,
        };
        f(&mut b);
        println!(
            "{name:<44} {:>14}/iter (best {:>12}, {} x {} iters)",
            format_ns(b.median_ns),
            format_ns(b.best_ns),
            DEFAULT_SAMPLES,
            b.iters_per_sample,
        );
        self.results.push((name.to_owned(), b.median_ns, b.best_ns));
        self
    }

    /// Opens a named group (grouping only affects the printed names).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }

    /// Prints the closing summary. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }

    /// The median ns/iter of a completed benchmark, for programmatic
    /// before/after comparisons.
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, m, _)| *m)
    }
}

/// Group handle mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group's namespace.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into
/// one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
