//! A tiny, dependency-free micro-benchmark harness with a Criterion-shaped
//! API.
//!
//! The workspace builds in fully offline environments, so it cannot pull
//! `criterion` from crates.io. This module provides the subset of its
//! surface the bench files use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! `std::time::Instant` loop: a warm-up phase to calibrate the iteration
//! count, then a fixed number of timed samples, reporting the best and
//! median ns/iteration. Results print to stdout; run with
//! `cargo bench -p btgs-bench`.
//!
//! # Machine-readable output
//!
//! When the environment variable `BTGS_BENCH_JSON` names a directory, each
//! bench binary additionally writes `BENCH_<bench>.json` there: one record
//! per benchmark with `median_ns`, `best_ns` and — where the bench declared
//! a [`Throughput`] — `elements_per_iter` and `elements_per_sec`
//! (events/sec for the engine benches). The committed `BENCH_*.json` files
//! at the repository root track this perf trajectory across PRs.

use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// Target wall-clock budget of one sample batch.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Timed sample batches per benchmark.
const DEFAULT_SAMPLES: usize = 12;

/// The measurement driver handed to every benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Best observed nanoseconds per iteration.
    pub best_ns: f64,
    /// Median observed nanoseconds per iteration.
    pub median_ns: f64,
}

impl Bencher {
    /// Times `f`, choosing an iteration count so one sample batch lasts
    /// about [`SAMPLE_BUDGET`].
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it costs a measurable slice.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let spent = start.elapsed();
            if spent >= SAMPLE_BUDGET / 4 || iters >= 1 << 30 {
                let per_iter = spent.as_secs_f64() / iters as f64;
                if per_iter > 0.0 {
                    let target = SAMPLE_BUDGET.as_secs_f64() / per_iter;
                    iters = (target as u64).clamp(1, 1 << 30);
                }
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.iters_per_sample = iters;
        // Measure.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(f64::total_cmp);
        self.best_ns = per_iter_ns[0];
        self.median_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

/// Declared per-iteration workload, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. simulation events) processed per iteration; enables
    /// the derived elements/sec figure in print and JSON output.
    Elements(u64),
}

/// One completed benchmark.
#[derive(Clone, Debug)]
struct BenchResult {
    name: String,
    median_ns: f64,
    best_ns: f64,
    elements: Option<u64>,
    /// Bench-supplied integer annotations (e.g. engine phase counters),
    /// serialized verbatim into the JSON record.
    extras: Vec<(String, u64)>,
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs one named benchmark and prints its result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.bench_inner(name, None, f)
    }

    fn bench_inner<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_per_sample: 0,
            samples: DEFAULT_SAMPLES,
            best_ns: f64::NAN,
            median_ns: f64::NAN,
        };
        f(&mut b);
        let rate = elements
            .map(|n| format!("  {:>12}", format_rate(n as f64 * 1e9 / b.median_ns)))
            .unwrap_or_default();
        println!(
            "{name:<44} {:>14}/iter (best {:>12}, {} x {} iters){rate}",
            format_ns(b.median_ns),
            format_ns(b.best_ns),
            DEFAULT_SAMPLES,
            b.iters_per_sample,
        );
        self.results.push(BenchResult {
            name: name.to_owned(),
            median_ns: b.median_ns,
            best_ns: b.best_ns,
            elements,
            extras: Vec::new(),
        });
        self
    }

    /// Attaches integer annotations to the most recently completed
    /// benchmark whose name ends with `suffix` (workload-derived counters
    /// the measurement loop itself cannot observe). They ride along in
    /// the JSON trajectory record.
    pub fn annotate(&mut self, suffix: &str, extras: &[(&str, u64)]) {
        if let Some(r) = self
            .results
            .iter_mut()
            .rev()
            .find(|r| r.name.ends_with(suffix))
        {
            r.extras
                .extend(extras.iter().map(|&(k, v)| (k.to_owned(), v)));
        }
    }

    /// Opens a named group (grouping only affects the printed names).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            elements: None,
        }
    }

    /// Prints the closing summary. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }

    /// The median ns/iter of a completed benchmark, for programmatic
    /// before/after comparisons.
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    /// Renders every result as a JSON array (ns/op plus derived
    /// elements/sec where a [`Throughput`] was declared).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"name\": \"{}\", \"median_ns\": {:.1}, \"best_ns\": {:.1}",
                json_escape(&r.name),
                r.median_ns,
                r.best_ns,
            ));
            if let Some(n) = r.elements {
                out.push_str(&format!(
                    ", \"elements_per_iter\": {n}, \"elements_per_sec\": {:.1}",
                    n as f64 * 1e9 / r.median_ns
                ));
            }
            for (k, v) in &r.extras {
                out.push_str(&format!(", \"{}\": {v}", json_escape(k)));
            }
            out.push_str(&format!("}}{sep}\n"));
        }
        out.push(']');
        out
    }

    /// Writes `BENCH_<bench>.json` into the directory named by the
    /// `BTGS_BENCH_JSON` environment variable, if set. Called by
    /// [`criterion_main!`] with the bench binary's name. The payload
    /// carries the host fingerprint, so trajectory entries are
    /// self-describing (cross-host wall clock is not comparable).
    pub fn write_json_from_env(&self, bench: &str) {
        let Ok(dir) = std::env::var("BTGS_BENCH_JSON") else {
            return;
        };
        let path = std::path::Path::new(&dir).join(format!("BENCH_{bench}.json"));
        let payload = format!(
            "{{\n\"bench\": \"{}\",\n\"host\": \"{}\",\n\"results\": {}\n}}\n",
            json_escape(bench),
            json_escape(&crate::host::host_fingerprint()),
            self.to_json()
        );
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(payload.as_bytes())) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("BTGS_BENCH_JSON: cannot write {}: {e}", path.display()),
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The invoking bench binary's logical name: the executable file stem with
/// cargo's trailing `-<16-hex-digit>` disambiguator removed.
pub fn bench_binary_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_owned();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_owned()
        }
        _ => stem,
    }
}

/// Group handle mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    elements: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration workload of subsequent benchmarks in this
    /// group (mirrors `criterion::BenchmarkGroup::throughput`).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(n) = t;
        self.elements = Some(n);
        self
    }

    /// Runs one benchmark within the group's namespace.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let elements = self.elements;
        self.criterion.bench_inner(&full, elements, f);
        self
    }

    /// Forwards to [`Criterion::annotate`] for a benchmark of this group.
    pub fn annotate(&mut self, name: &str, extras: &[(&str, u64)]) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.annotate(&full, extras);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.2} Mel/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} kel/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} el/s")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions into
/// one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::microbench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running the groups,
/// then emitting JSON when `BTGS_BENCH_JSON` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::microbench::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
            c.write_json_from_env(&$crate::microbench::bench_binary_name());
        }
    };
}
