//! Host fingerprinting for the perf-trajectory files.
//!
//! The committed `BENCH_*.json` trajectories accumulate entries from
//! whatever machine CI (or a developer) happens to run on, and the
//! ROADMAP's caveat stands: wall-clock numbers from different hosts are
//! not comparable. Tagging every entry with a host fingerprint makes the
//! files self-describing, and lets `bench_trajectory` compute deltas
//! against the latest **same-host** entry only.
//!
//! The fingerprint is `hostname/cpu-model`, read from `/proc` on Linux
//! with conservative fallbacks elsewhere — it only needs to be stable on
//! one machine and distinct across different hardware, not globally
//! unique.

/// `hostname/cpu-model`, whitespace-normalised.
pub fn host_fingerprint() -> String {
    format!("{}/{}", hostname(), cpu_model())
}

fn sanitize(s: &str) -> String {
    let cleaned: Vec<&str> = s.split_whitespace().collect();
    cleaned.join(" ")
}

/// The machine's hostname (`/proc/sys/kernel/hostname`, then
/// `$HOSTNAME`, then `"unknown-host"`).
pub fn hostname() -> String {
    let from_proc = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| sanitize(&s))
        .filter(|s| !s.is_empty());
    from_proc
        .or_else(|| {
            std::env::var("HOSTNAME")
                .ok()
                .map(|s| sanitize(&s))
                .filter(|s| !s.is_empty())
        })
        .unwrap_or_else(|| "unknown-host".to_owned())
}

/// Process CPU seconds (utime + stime) from `/proc/self/stat` — immune
/// to hypervisor steal, unlike the wall clock. 10 ms tick granularity,
/// so measure over many runs; returns 0.0 where `/proc` is unavailable.
pub fn cpu_secs() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // Skip past the parenthesised comm field, then utime/stime are fields
    // 12 and 13 of the remainder.
    let Some((_, rest)) = stat.rsplit_once(") ") else {
        return 0.0;
    };
    let f: Vec<&str> = rest.split_whitespace().collect();
    let ticks = f.get(11).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0)
        + f.get(12).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    ticks as f64 / 100.0
}

/// The CPU model (`model name` from `/proc/cpuinfo`, falling back to the
/// architecture).
pub fn cpu_model() -> String {
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in cpuinfo.lines() {
            // x86 calls it "model name"; some ARM kernels use "Processor".
            if line.starts_with("model name") || line.starts_with("Processor") {
                if let Some((_, model)) = line.split_once(':') {
                    let model = sanitize(model);
                    if !model.is_empty() {
                        return model;
                    }
                }
            }
        }
    }
    format!("unknown-cpu-{}", std::env::consts::ARCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_non_empty() {
        let a = host_fingerprint();
        let b = host_fingerprint();
        assert_eq!(a, b, "fingerprint must be stable within a process");
        assert!(a.contains('/'));
        let (host, cpu) = a.split_once('/').unwrap();
        assert!(!host.is_empty());
        assert!(!cpu.is_empty());
        // Normalised: no newlines or runs of spaces (JSON-safe, one
        // line).
        assert!(!a.contains('\n'));
        assert!(!a.contains("  "));
    }

    #[test]
    fn sanitize_collapses_whitespace() {
        assert_eq!(sanitize("  a \t b\nc  "), "a b c");
        assert_eq!(sanitize(""), "");
    }
}
