//! A counting global allocator for zero-allocation assertions.
//!
//! The simulator's steady state is designed to be allocation-free: the
//! timing wheel recycles bucket capacity, flow queues reuse theirs, and the
//! pollers precompute every table they need. This module provides the
//! proof: install [`CountingAllocator`] as the `#[global_allocator]` of a
//! test or bench binary, snapshot [`allocation_count`] around the code
//! under test, and assert the delta is zero.
//!
//! Counting uses a relaxed atomic — the counter is a diagnostic, not a
//! synchronisation point — and adds a handful of nanoseconds per
//! allocation, which is irrelevant for the zero-allocation windows it
//! exists to certify.
//!
//! This is the one place in the workspace that needs `unsafe`: a
//! [`GlobalAlloc`] implementation is inherently an unsafe contract. The
//! implementation delegates straight to [`System`] and touches nothing
//! else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-delegating allocator that counts every allocation.
///
/// # Examples
///
/// Install it in a test binary and bracket the code under test:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: btgs_bench::alloc_counter::CountingAllocator =
///     btgs_bench::alloc_counter::CountingAllocator;
///
/// let before = btgs_bench::alloc_counter::allocation_count();
/// hot_loop();
/// assert_eq!(btgs_bench::alloc_counter::allocation_count(), before);
/// ```
pub struct CountingAllocator;

// SAFETY: delegates every operation verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on allocation
// behaviour.
// This is the one `#[allow(unsafe_code)]` the determinism lint's
// unsafe-policy rule permits in the workspace (btgs-analyze enforces it:
// exactly one, on this impl).
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ord: Relaxed — a statistical tally; the zero-alloc assertions
        // read it from the same thread that allocated.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // ord: Relaxed — same tally as above.
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move the block: count it as an allocation event —
        // the steady state must not grow *any* buffer.
        // ord: Relaxed — same tally as above.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // ord: Relaxed — same tally as above.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Heap allocation events (alloc, alloc_zeroed, realloc) since process
/// start. Only meaningful when [`CountingAllocator`] is installed as the
/// global allocator.
pub fn allocation_count() -> u64 {
    // ord: Relaxed — the assertion brackets run on the allocating thread.
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap deallocation events since process start.
pub fn deallocation_count() -> u64 {
    // ord: Relaxed — same single-thread bracket read as above.
    DEALLOCATIONS.load(Ordering::Relaxed)
}
