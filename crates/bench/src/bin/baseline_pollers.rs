//! **Baselines** — the best-effort pollers the paper's §1/§3 survey cites,
//! compared on the Fig. 4 best-effort load (no GS flows).
//!
//! Round robin and exhaustive round robin waste polls on idle slaves; FEP
//! and PFP-BE track activity to avoid that, PFP additionally balancing the
//! slot shares. This context experiment shows why the paper builds its GS
//! poller on PFP.

use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs_bench::{banner, BenchArgs};
use btgs_core::{ExperimentRunner, BE_RATES_KBPS};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_metrics::{jain_index, Table};
use btgs_piconet::{FlowSpec, PiconetConfig, PiconetSim, Poller};
use btgs_pollers::{
    ExhaustiveRoundRobinPoller, FepPoller, HolPriorityPoller, PfpBePoller, RoundRobinPoller,
};
use btgs_traffic::{CbrSource, FlowId, Source};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

fn config() -> PiconetConfig {
    let mut config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_warmup(SimDuration::from_secs(2));
    for (k, _) in BE_RATES_KBPS.iter().enumerate() {
        let sl = s(4 + k as u8);
        config = config
            .with_flow(FlowSpec::new(
                FlowId(5 + 2 * k as u32),
                sl,
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ))
            .with_flow(FlowSpec::new(
                FlowId(6 + 2 * k as u32),
                sl,
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ));
    }
    config
}

fn sources(seed: u64) -> Vec<Box<dyn Source>> {
    let root = DetRng::seed_from_u64(seed);
    let mut out: Vec<Box<dyn Source>> = Vec::new();
    for (k, kbps) in BE_RATES_KBPS.iter().enumerate() {
        let interval = SimDuration::from_secs_f64(176.0 * 8.0 / (kbps * 1000.0));
        for id in [FlowId(5 + 2 * k as u32), FlowId(6 + 2 * k as u32)] {
            let mut stream = root.stream(u64::from(id.0));
            let offset = SimTime::from_nanos(stream.below(interval.as_nanos()));
            out.push(Box::new(
                CbrSource::new(id, interval, 176, 176, stream).starting_at(offset),
            ));
        }
    }
    out
}

/// Builds one baseline poller by name; construction happens inside the
/// worker thread so the boxed pollers need not be `Send`.
fn poller_by_name(name: &str) -> Box<dyn Poller> {
    match name {
        "round-robin" => Box::new(RoundRobinPoller::new()),
        "exhaustive-rr" => Box::new(ExhaustiveRoundRobinPoller::new()),
        "fep" => Box::new(FepPoller::new(SimDuration::from_millis(30))),
        "hol-priority" => Box::new(HolPriorityPoller::new()),
        "pfp-be" => Box::new(PfpBePoller::new(SimDuration::from_millis(25))),
        other => panic!("unknown baseline poller {other}"),
    }
}

fn main() {
    let args = BenchArgs::parse(60);
    banner("Baseline BE pollers on the Fig. 4 best-effort load", &args);

    let names = [
        "round-robin",
        "exhaustive-rr",
        "fep",
        "hol-priority",
        "pfp-be",
    ];
    // All five baseline runs are independent and deterministic: fan them
    // across threads, keep the name order for rendering.
    let reports = ExperimentRunner::new().run(&names, |name| {
        let mut sim = PiconetSim::new(config(), poller_by_name(name), Box::new(IdealChannel))
            .expect("valid baseline scenario");
        for src in sources(args.seed) {
            sim.add_source(src).expect("source");
        }
        sim.run(args.horizon()).expect("baseline scenario runs")
    });

    let mut t = Table::new(vec![
        "poller",
        "total BE [kbps]",
        "per-slave kbps (S4..S7)",
        "Jain idx",
        "mean delay",
        "max delay",
        "wasted polls/s",
        "idle slots/s",
    ]);
    for (name, report) in names.iter().zip(reports) {
        let window_s = report.window().as_secs_f64();
        let per_slave: Vec<f64> = (4..=7u8)
            .map(|n| report.slave_throughput_kbps(s(n)))
            .collect();
        let mut all_delays = btgs_metrics::DelayStats::new();
        for f in &report.flows {
            all_delays.merge(&report.flow(f.id).delay);
        }
        t.row(vec![
            (*name).into(),
            format!("{:.1}", per_slave.iter().sum::<f64>()),
            per_slave
                .iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join("/"),
            format!("{:.3}", jain_index(&per_slave)),
            all_delays.mean().map_or("-".into(), |d| d.to_string()),
            all_delays.max().map_or("-".into(), |d| d.to_string()),
            format!("{:.1}", report.be_polls.unsuccessful as f64 / window_s),
            format!(
                "{:.0}",
                report.ledger.idle_in(report.window()) as f64 / window_s
            ),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: all pollers deliver the offered ~400 kbps (the load fits),");
    println!("but RR/ERR waste hundreds of polls per second on empty slaves, while");
    println!("FEP and PFP-BE poll at need — PFP with the fewest wasted polls and the");
    println!("most idle (reusable) slots.");
}
