//! Sharded-runner smoke check (CI gate).
//!
//! Runs one grid twice — in-process via `ExperimentRunner`, and sharded
//! across worker *processes* via `btgs_grid::ShardedGridRunner` — and
//! asserts the merged `GridReport`s are **bit-for-bit identical**
//! (digest and summary table). The sharded pass also streams every cell
//! through the bounded-memory `OnlineAggregator` and archives it to a
//! JSONL spill file for the CI artifacts.
//!
//! Usage: `grid_smoke [--seconds N] [--seed N] [--workers N]`. The
//! spill and checkpoints land in `$BTGS_GRID_ARTIFACTS` (default
//! `grid-artifacts/`).
//!
//! Exits non-zero on any mismatch.

use btgs_core::{
    comparison_pollers, BeSourceMix, ExperimentRunner, MultiSink, ScenarioGrid, Topology,
};
use btgs_des::{SimDuration, SimTime};
use btgs_grid::{GridPartitioner, JsonlSpillSink, OnlineAggregator, ShardedGridRunner};
use std::path::PathBuf;
use std::process::ExitCode;

fn worker_bin() -> PathBuf {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory");
    let candidate = dir.join(format!("grid_worker{}", std::env::consts::EXE_SUFFIX));
    assert!(
        candidate.exists(),
        "grid_worker binary not found next to grid_smoke at {}; build it with \
         `cargo build -p btgs-bench --bin grid_worker`",
        candidate.display()
    );
    candidate
}

fn main() -> ExitCode {
    // Minimal arg parsing (the shared BenchArgs lacks --workers).
    let mut seconds = 2u64;
    let mut seed = 1u64;
    let mut workers = 2usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = || {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .expect("flag needs a positive integer")
        };
        match flag.as_str() {
            "--seconds" => seconds = take(),
            "--seed" => seed = take(),
            "--workers" => workers = take() as usize,
            other => panic!("unknown flag {other}; known: --seconds --seed --workers"),
        }
    }

    let grid = ScenarioGrid {
        pollers: comparison_pollers(),
        piconets: vec![1, 2],
        seeds: (seed..seed + 4).collect(),
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(seconds),
        warmup: SimDuration::from_millis(500),
        include_be: true,
        be_load_scale: vec![1.0, 1.5],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    let cells = grid.cells().len();
    println!("=== sharded-runner smoke: {cells} cells, {workers} worker processes ===");

    let reference = ExperimentRunner::new().run_grid(&grid);

    let artifacts = PathBuf::from(
        std::env::var("BTGS_GRID_ARTIFACTS").unwrap_or_else(|_| "grid-artifacts".into()),
    );
    std::fs::create_dir_all(&artifacts).expect("artifact dir");
    let ckpt_dir = artifacts.join("checkpoints");
    // A fresh smoke run must not resume an older one's checkpoints.
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let mut aggregator = OnlineAggregator::for_grid(&grid);
    let mut spill =
        JsonlSpillSink::create(&artifacts.join("grid_cells.jsonl"), &grid).expect("spill file");
    let outcome = {
        let mut sinks = MultiSink::new(vec![&mut aggregator, &mut spill]);
        ShardedGridRunner::new(&worker_bin(), &ckpt_dir, workers)
            .with_partitioner(GridPartitioner::with_target_cells_per_shard(4))
            .run_observed(&grid, &mut sinks)
            .expect("sharded run must complete")
    };
    let (spill_path, lines) = spill.finish().expect("spill flushed");
    println!(
        "sharded: {} workers spawned, {} cells executed, {} replayed; spill {} ({lines} lines)",
        outcome.workers_spawned,
        outcome.executed_cells,
        outcome.replayed_cells,
        spill_path.display(),
    );

    let mut failed = false;
    if reference.digest() != outcome.report.digest() {
        eprintln!("FAIL: sharded digest differs from in-process digest");
        failed = true;
    }
    if reference.summary_table().render() != outcome.report.summary_table().render() {
        eprintln!("FAIL: sharded summary table differs from in-process table");
        failed = true;
    }
    if lines != cells as u64 {
        eprintln!("FAIL: spill has {lines} lines for {cells} cells");
        failed = true;
    }
    if aggregator.cells() != cells as u64 {
        eprintln!(
            "FAIL: aggregator saw {} cells of {cells}",
            aggregator.cells()
        );
        failed = true;
    }

    println!("\nstreaming aggregator summary (bounded memory):");
    println!("{}", aggregator.summary_table().render());
    println!("\nin-process summary (reference):");
    println!("{}", reference.summary_table().render());

    if failed {
        eprintln!("sharded-runner smoke FAILED");
        return ExitCode::FAILURE;
    }
    println!("sharded run is bit-for-bit identical to the in-process runner ✓");
    ExitCode::SUCCESS
}
