//! **Fig. 3 claim** — "taking piggybacking of GS flows into account makes
//! it possible to accept more GS flows", plus the effect of priority
//! *reassignment* (Audsley search) over naive arrival-order priorities.
//!
//! Purely analytical: for growing sets of bidirectional 64 kbps GS pairs at
//! increasing rates, counts how many flows each admission variant accepts.

use btgs_baseband::{AmAddr, Direction};
use btgs_bench::{banner, BenchArgs};
use btgs_core::{admit, paper_tspec, piconet_u, y_max, AdmissionConfig, GsRequest, HigherEntity};
use btgs_metrics::Table;
use btgs_traffic::FlowId;

/// Builds `pairs` bidirectional GS pairs at the given granted rate.
fn pair_requests(pairs: u8, rate: f64) -> Vec<GsRequest> {
    let tspec = paper_tspec();
    let mut out = Vec::new();
    for n in 1..=pairs {
        let s = AmAddr::new(n).expect("<=7 pairs");
        out.push(GsRequest::new(
            FlowId(2 * n as u32 - 1),
            s,
            Direction::MasterToSlave,
            tspec,
            rate,
        ));
        out.push(GsRequest::new(
            FlowId(2 * n as u32),
            s,
            Direction::SlaveToMaster,
            tspec,
            rate,
        ));
    }
    out
}

/// How many flows of `requests` a given config accepts when flows arrive
/// one at a time (the paper's incremental setting).
fn incremental_accepts(requests: &[GsRequest], cfg: &AdmissionConfig) -> usize {
    let mut accepted: Vec<GsRequest> = Vec::new();
    for r in requests {
        let mut trial = accepted.clone();
        trial.push(r.clone());
        if admit(&trial, cfg).is_ok() {
            accepted = trial;
        }
    }
    accepted.len()
}

/// Arrival-order (no reassignment) feasibility: priorities fixed by
/// arrival; each entity must satisfy Eq. 9 against the ones before it.
fn arrival_order_accepts(requests: &[GsRequest], cfg: &AdmissionConfig) -> usize {
    let tspec = paper_tspec();
    let eta = 144.0;
    let u = piconet_u(&cfg.allowed_types);
    let mut higher: Vec<HigherEntity> = Vec::new();
    let mut accepted = 0usize;
    let mut seen_slaves: Vec<AmAddr> = Vec::new();
    for r in requests {
        if cfg.piggyback && seen_slaves.contains(&r.slave) {
            // Counterpart rides on the already-admitted entity.
            accepted += 1;
            continue;
        }
        let x = btgs_core::poll_interval(eta, r.rate);
        if y_max(u, &higher, x).is_some() {
            accepted += 1;
            seen_slaves.push(r.slave);
            higher.push(HigherEntity { x, s: u });
        }
        let _ = tspec;
    }
    accepted
}

fn main() {
    let args = BenchArgs::parse(1);
    banner(
        "Admission: piggybacking and priority reassignment (Fig. 3)",
        &args,
    );

    let mut t = Table::new(vec![
        "granted rate [B/s]",
        "offered flows",
        "accepted (piggyback + reassign)",
        "accepted (no piggyback)",
        "accepted (piggyback, arrival order)",
    ]);
    for rate in [
        8_800.0, 9_000.0, 9_600.0, 10_400.0, 11_200.0, 12_800.0, 16_000.0,
    ] {
        let requests = pair_requests(7, rate);
        let full_cfg = AdmissionConfig::paper();
        let mut naive_cfg = AdmissionConfig::paper();
        naive_cfg.piggyback = false;
        t.row(vec![
            format!("{rate:.0}"),
            requests.len().to_string(),
            incremental_accepts(&requests, &full_cfg).to_string(),
            incremental_accepts(&requests, &naive_cfg).to_string(),
            arrival_order_accepts(&requests, &full_cfg).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: the piggyback-aware column dominates the naive one (paper's claim);");
    println!("for symmetric request sets, arrival order matches the Audsley search, and");
    println!("falls behind once requests are heterogeneous (see the library tests).");
}
