//! **Fig. 5** — per-slave throughput vs. GS delay requirement.
//!
//! The paper's headline figure: seven slaves, four 64 kbps GS flows and
//! eight BE flows; the requested delay bound sweeps 28–46 ms. Expected
//! shape (paper): every GS flow stays at 64 kbps regardless of the
//! requirement (S2 carries two flows → 128 kbps); the BE slaves reach their
//! maxima at loose bounds and are squeezed to a max-min-fair equal share as
//! the bound tightens, the lowest-demand slave (S4) saturating first.

use btgs_bench::{banner, BenchArgs};
use btgs_core::{predicted_be_throughput_kbps, sweep_fig5, PollerKind};
use btgs_des::SimDuration;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Fig. 5: throughput vs. delay requirement (PFP-GS)", &args);

    let requirements: Vec<SimDuration> = (28..=46)
        .step_by(args.step_ms as usize)
        .map(SimDuration::from_millis)
        .collect();
    let series = sweep_fig5(&requirements, args.seed, args.horizon(), PollerKind::PfpGs);
    println!("{}", series.to_table().render());

    println!("Reference points:");
    println!("  paper: GS flat at 64 kbps; BE maxima 83.2 / 94.4 / 105.6 / 116.8 kbps;");
    println!("         total max 656 kbps incl. 256 kbps GS.");
    let predicted = predicted_be_throughput_kbps(700.0);
    println!(
        "  water-filling prediction at ~700 GS slots/s: S4..S7 = {:.1} / {:.1} / {:.1} / {:.1} kbps",
        predicted[0], predicted[1], predicted[2], predicted[3]
    );
}
