//! **Future work (§5)** — behaviour in a non-ideal radio environment.
//!
//! The paper's closing section asks for an evaluation with transmission
//! errors, where the bandwidth saved by the variable interval poller pays
//! for retransmissions. This bench sweeps the bit error rate, runs the
//! Fig. 4 scenario under PFP-GS over a [`BerChannel`], and reports where
//! the delay guarantee starts to erode and how many slots ARQ
//! retransmissions consume.

use btgs_baseband::{AmAddr, BerChannel};
use btgs_bench::{banner, BenchArgs};
use btgs_core::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs_des::{DetRng, SimDuration};
use btgs_metrics::Table;
use btgs_piconet::PiconetSim;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Non-ideal radio: BER sweep with ARQ retransmissions", &args);

    let dreq = SimDuration::from_millis(40);
    let mut t = Table::new(vec![
        "BER",
        "GS max delay",
        "bound violations",
        "GS retx slots/s",
        "BE retx slots/s",
        "GS delivered [kbps]",
        "BE total [kbps]",
    ]);
    for &ber in &[0.0, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3] {
        let scenario = PaperScenario::build(PaperScenarioParams {
            delay_requirement: dreq,
            seed: args.seed,
            ..Default::default()
        });
        let poller = scenario.poller(PollerKind::PfpGs);
        let channel = BerChannel::new(ber, DetRng::seed_from_u64(args.seed ^ 0xBE5).stream(9));
        let mut sim = PiconetSim::new(scenario.config.clone(), Box::new(poller), Box::new(channel))
            .expect("valid scenario");
        for src in scenario.sources() {
            sim.add_source(src).expect("source");
        }
        let report = sim.run(args.horizon()).expect("scenario runs");
        let window_s = report.window().as_secs_f64();
        let max_delay = scenario
            .gs_plans
            .iter()
            .filter_map(|p| report.flow(p.request.id).delay.max())
            .max()
            .expect("GS flows see traffic");
        let violations: usize = scenario
            .gs_plans
            .iter()
            .map(|p| {
                report
                    .flow(p.request.id)
                    .delay
                    .violations_of(p.achievable_bound)
            })
            .sum();
        let gs_kbps: f64 = scenario
            .gs_plans
            .iter()
            .map(|p| report.throughput_kbps(p.request.id))
            .sum();
        let be_kbps: f64 = (4..=7u8)
            .map(|n| report.slave_throughput_kbps(AmAddr::new(n).expect("S4..S7")))
            .sum();
        t.row(vec![
            format!("{ber:.0e}"),
            max_delay.to_string(),
            violations.to_string(),
            format!("{:.1}", report.ledger.gs_retx as f64 / window_s),
            format!("{:.1}", report.ledger.be_retx as f64 / window_s),
            format!("{gs_kbps:.1}"),
            format!("{be_kbps:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: the ideal-radio guarantee (violations = 0 at BER 0) erodes as");
    println!("losses force retransmissions the admission test did not budget — the");
    println!("open problem the paper's future-work section names. Retransmissions are");
    println!("paid from the saved (idle/BE) bandwidth: GS throughput holds while BE");
    println!("shrinks.");
}
