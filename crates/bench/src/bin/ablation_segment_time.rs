//! **Ablation C** — conservative vs. exact segment-time accounting.
//!
//! The paper charges every GS entity the piconet-wide worst-case exchange
//! time `U` when computing `y` (both directions could carry a DH3). The
//! exact model charges only what an entity's own directions can transmit
//! (POLL + DH3 for a unidirectional uplink flow). Purely analytical.

use btgs_baseband::{AmAddr, Direction};
use btgs_bench::{banner, BenchArgs};
use btgs_core::{
    admit, max_admissible_rate, paper_tspec, AdmissionConfig, GsRequest, SegmentTimeModel,
};
use btgs_des::SimDuration;
use btgs_gs::{delay_bound, ErrorTerms};
use btgs_metrics::Table;
use btgs_traffic::FlowId;

fn main() {
    let args = BenchArgs::parse(1);
    banner(
        "Ablation: segment-time accounting (conservative vs. exact)",
        &args,
    );

    let tspec = paper_tspec();
    let s = |n| AmAddr::new(n).unwrap();
    let requests = vec![
        GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(2), s(2), Direction::MasterToSlave, tspec, 8800.0),
        GsRequest::new(FlowId(3), s(2), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(4), s(3), Direction::SlaveToMaster, tspec, 8800.0),
    ];

    let mut t = Table::new(vec![
        "model",
        "entity",
        "s charged",
        "y",
        "R_max [B/s] (Eq. 9)",
        "min Dreq at R_max",
    ]);
    for (model, label) in [
        (SegmentTimeModel::Conservative, "conservative (paper)"),
        (SegmentTimeModel::Exact, "exact"),
    ] {
        let mut cfg = AdmissionConfig::paper();
        cfg.segment_time = model;
        let out = admit(&requests, &cfg).expect("paper set admissible under both models");
        for e in &out.entities {
            let r_max = max_admissible_rate(e.eta_min, e.y);
            let dmin = delay_bound(&tspec, r_max, ErrorTerms::new(e.eta_min, e.y))
                .expect("R_max >= token rate");
            t.row(vec![
                label.into(),
                format!("{} (prio {})", e.slave, e.priority),
                e.s.to_string(),
                e.y.to_string(),
                format!("{r_max:.0}"),
                dmin.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Expected: the exact model charges unidirectional entities 2.5 ms instead");
    println!("of 3.75 ms, lowering the last entity's y from 11.25 ms to 10 ms and");
    println!("raising its admissible rate ceiling from 12.8 kB/s to 14.4 kB/s —");
    println!("tighter delay requirements become admissible.");
    let _ = SimDuration::ZERO;
}
