//! Appends fresh `BTGS_BENCH_JSON` outputs to the committed `BENCH_*.json`
//! trajectory files (ROADMAP item: CI keeps the perf trajectory in-repo
//! instead of only uploading artifacts).
//!
//! Usage:
//!
//! ```text
//! bench_trajectory <bench-json-dir> <entry-label> [note]
//! ```
//!
//! For every `BENCH_<name>.json` the microbench harness wrote into
//! `<bench-json-dir>` (shape `{"bench": ..., "host": ..., "results":
//! [...]}`), the matching trajectory file `BENCH_<name>.json` in the
//! current directory gains one entry `{"pr": "<entry-label>", "queue":
//! "<note>", "host": "<hostname/cpu>", "results": [...]}`. Missing
//! trajectory files are created with an empty skeleton first, so new
//! benches self-register. The append itself is plain string surgery on
//! the fixed formats both sides emit (preserving the committed files'
//! layout byte-for-byte).
//!
//! Because wall-clock numbers from different machines are not comparable
//! (the ROADMAP caveat), the tool also prints **per-bench deltas against
//! the latest entry with the same host fingerprint**, ignoring entries
//! from other hosts; with no same-host predecessor it says so instead of
//! comparing apples to oranges.

use btgs_grid::json::Json;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// Escapes a string for embedding in a JSON string literal. Labels and
/// notes come from CI shell interpolation; an unescaped quote would
/// corrupt every committed trajectory file.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extracts the `"results": [...]` array (inclusive of brackets) from a
/// harness output file.
fn extract_results(payload: &str) -> Option<&str> {
    let key = "\"results\":";
    let start = payload.find(key)? + key.len();
    let rest = &payload[start..];
    let open = rest.find('[')?;
    let close = rest.rfind(']')?;
    Some(rest[open..=close].trim_start_matches('\n'))
}

/// `true` if the trajectory array between its final brackets already holds
/// an entry (so the new one needs a separating comma).
fn trajectory_is_nonempty(file: &str, close: usize) -> bool {
    let open = file[..close].rfind("\"trajectory\":").and_then(|k| {
        let rest = &file[k..close];
        rest.find('[').map(|o| k + o)
    });
    match open {
        Some(o) => !file[o + 1..close].trim().is_empty(),
        None => false,
    }
}

fn append_entry(
    trajectory_path: &Path,
    bench: &str,
    label: &str,
    note: &str,
    host: &str,
    results: &str,
) -> Result<(), String> {
    let skeleton = || {
        format!(
            "{{\n\"bench\": \"{bench}\",\n\"comment\": \"Perf trajectory of the {bench} bench. \
             Entries are appended automatically by CI (crates/bench/src/bin/bench_trajectory.rs); \
             wall-clock numbers from different machines are not directly comparable - compare \
             entries from the same host, or in-process twin benches.\",\n\"trajectory\": [\n]\n}}\n"
        )
    };
    // Only a genuinely missing file starts a fresh skeleton; any other
    // read error aborts — rebuilding from scratch would silently destroy
    // the committed history this tool exists to preserve.
    let file = match fs::read_to_string(trajectory_path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => skeleton(),
        Err(e) => return Err(format!("{}: {e}", trajectory_path.display())),
    };
    // Same-host deltas against the committed history, before appending.
    print_same_host_deltas(&file, host, results);
    let close = file
        .rfind(']')
        .ok_or_else(|| format!("{}: no trajectory array", trajectory_path.display()))?;
    let sep = if trajectory_is_nonempty(&file, close) {
        ",\n"
    } else {
        ""
    };
    // Indent the results array to match the hand-written entries.
    let indented = results.replace('\n', "\n    ");
    let (label, note, host) = (json_escape(label), json_escape(note), json_escape(host));
    let entry = format!(
        "{sep}  {{\n    \"pr\": \"{label}\",\n    \"queue\": \"{note}\",\n    \"host\": \"{host}\",\n    \"results\": {indented}\n  }}\n"
    );
    let mut out = String::with_capacity(file.len() + entry.len());
    out.push_str(file[..close].trim_end_matches([' ', '\n']));
    out.push('\n');
    out.push_str(&entry);
    out.push_str(&file[close..]);
    fs::write(trajectory_path, out).map_err(|e| format!("{}: {e}", trajectory_path.display()))
}

/// `(name, median_ns)` pairs of a parsed results array.
fn medians(results: &Json) -> Vec<(String, f64)> {
    results
        .as_arr()
        .unwrap_or(&[])
        .iter()
        .filter_map(|r| {
            Some((
                r.get("name")?.as_str()?.to_owned(),
                r.get("median_ns")?.as_f64()?,
            ))
        })
        .collect()
}

/// Prints per-bench deltas of `new_results` against the most recent
/// trajectory entry with the same host fingerprint. Entries from other
/// hosts are filtered out — their wall clock is not comparable. Never
/// fails: delta reporting is advisory, the append is the contract.
fn print_same_host_deltas(trajectory_file: &str, host: &str, new_results: &str) {
    let Ok(parsed) = Json::parse(trajectory_file) else {
        println!("  (trajectory not parseable; deltas skipped)");
        return;
    };
    let entries = parsed
        .get("trajectory")
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    let other_hosts = entries
        .iter()
        .filter(|e| e.get("host").and_then(Json::as_str) != Some(host))
        .count();
    let baseline = entries
        .iter()
        .rev()
        .find(|e| e.get("host").and_then(Json::as_str) == Some(host));
    let Some(baseline) = baseline else {
        println!(
            "  no prior same-host entry ({other_hosts} entr(y/ies) from other/unknown hosts \
             ignored); deltas skipped"
        );
        return;
    };
    let base_label = baseline
        .get("pr")
        .and_then(Json::as_str)
        .unwrap_or("<unlabelled>");
    let base = baseline.get("results").map(medians).unwrap_or_default();
    let Ok(new_parsed) = Json::parse(new_results) else {
        return;
    };
    for (name, new_ns) in medians(&new_parsed) {
        if let Some((_, old_ns)) = base.iter().find(|(n, _)| *n == name) {
            if *old_ns > 0.0 {
                println!(
                    "  same-host delta vs '{base_label}': {name}: {old_ns:.0} -> {new_ns:.0} ns/op \
                     (x{:.2})",
                    new_ns / old_ns
                );
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (dir, label) = match args.as_slice() {
        [dir, label, ..] => (dir.clone(), label.clone()),
        _ => {
            eprintln!("usage: bench_trajectory <bench-json-dir> <entry-label> [note]");
            return ExitCode::FAILURE;
        }
    };
    let note = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| "appended by CI".to_owned());

    let entries = match fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut appended = 0;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(bench) = name
            .strip_prefix("BENCH_")
            .and_then(|n| n.strip_suffix(".json"))
            .map(str::to_owned)
        else {
            continue;
        };
        let payload = match fs::read_to_string(entry.path()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {name}: {e}");
                continue;
            }
        };
        let Some(results) = extract_results(&payload) else {
            eprintln!("skipping {name}: no results array");
            continue;
        };
        // The harness stamps its host fingerprint into the payload. A
        // payload without one (an older harness) may have been produced
        // on a *different* machine than the one appending it, so it is
        // tagged as explicitly unknown — never with this machine's
        // fingerprint, which would poison future same-host deltas with
        // foreign wall-clock numbers.
        let host = Json::parse(&payload)
            .ok()
            .and_then(|j| j.get("host").and_then(Json::as_str).map(str::to_owned))
            .unwrap_or_else(|| "unknown/legacy-harness".to_owned());
        let target = Path::new(&format!("BENCH_{bench}.json")).to_path_buf();
        match append_entry(&target, &bench, &label, &note, &host, results) {
            Ok(()) => {
                println!("appended '{label}' to {}", target.display());
                appended += 1;
            }
            Err(e) => {
                eprintln!("failed on {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{appended} trajectory file(s) updated");
    ExitCode::SUCCESS
}
