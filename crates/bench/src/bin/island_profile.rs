//! Dev probe: per-event vs per-activation cost of the island engine.

use btgs_core::{BeSourceMix, PollerKind, ScatternetScenario, ScatternetScenarioParams, Topology};
use btgs_des::{SimDuration, SimTime};
use std::time::Instant;

/// Process CPU seconds (utime + stime) from /proc/self/stat — immune to
/// hypervisor steal, unlike the wall clock. 10 ms granularity, so measure
/// over many runs.
fn cpu_secs() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").unwrap();
    // Skip past the parenthesised comm field, then utime/stime are fields
    // 12 and 13 of the remainder.
    let rest = stat.rsplit_once(") ").unwrap().1;
    let f: Vec<&str> = rest.split_whitespace().collect();
    let ticks: u64 = f[11].parse::<u64>().unwrap() + f[12].parse::<u64>().unwrap();
    ticks as f64 / 100.0
}

fn run(n: u16, topology: Topology, cycle_ms: u64, threads: usize) -> (f64, u64, u64, u64) {
    let scenario = ScatternetScenario::build(ScatternetScenarioParams {
        piconets: n,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: !matches!(topology, Topology::Mesh { .. }),
        bridge_cycle: SimDuration::from_millis(cycle_ms),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology,
    });
    let sim = scenario
        .simulator(PollerKind::PfpGs)
        .unwrap()
        .with_threads(threads);
    let start = Instant::now();
    let report = sim.run(SimTime::from_secs(5)).unwrap();
    let secs = start.elapsed().as_secs_f64();
    (
        secs,
        report.events_processed,
        report.phases_run,
        report.islands_claimed,
    )
}

fn main() {
    if let Ok(n) = std::env::var("PROFILE_LOOP") {
        let n: u32 = n.parse().unwrap();
        for _ in 0..n {
            std::hint::black_box(run(16, Topology::Chain, 20, 1));
        }
        return;
    }
    if std::env::var("PAR").is_ok() {
        for threads in [1usize, 2, 4] {
            let reps = 10u32;
            let (_, ev, _, _) = run(16, Topology::Chain, 20, threads);
            let (cpu0, wall0) = (cpu_secs(), Instant::now());
            for _ in 0..reps {
                std::hint::black_box(run(16, Topology::Chain, 20, threads));
            }
            let cpu = (cpu_secs() - cpu0) / reps as f64;
            let wall = wall0.elapsed().as_secs_f64() / reps as f64;
            println!(
                "chained16 threads={threads}  {:>7.2} ms cpu  {:>7.2} ms wall  {ev} ev",
                cpu * 1e3,
                wall * 1e3,
            );
        }
        return;
    }
    for (label, n, topo, cycle) in [
        ("chained2-20ms", 2u16, Topology::Chain, 20u64),
        ("chained16-20ms", 16, Topology::Chain, 20),
        ("chained16-80ms", 16, Topology::Chain, 80),
        ("chained16-160ms", 16, Topology::Chain, 160),
    ] {
        // CPU time over enough runs to swamp the 10 ms tick granularity.
        let reps = 20u32;
        let (_, ev, ph, act) = run(n, topo, cycle, 1); // warm-up + counters
        let cpu0 = cpu_secs();
        for _ in 0..reps {
            std::hint::black_box(run(n, topo, cycle, 1));
        }
        let secs = (cpu_secs() - cpu0) / reps as f64;
        println!(
            "{label:<18} {:>8.2} ms cpu  {ev:>7} ev  {ph:>5} phases  {act:>6} activations  {:>6.1} ns/ev  {:>7.0} ns/act",
            secs * 1e3,
            secs * 1e9 / ev as f64,
            secs * 1e9 / act as f64,
        );
    }
}
