//! **Ablation B** — the three §3.2 improvements toggled individually:
//!
//! * (a) packet-size-aware postponement after a packet's last segment;
//! * (b) replanning unsuccessful polls from their actual time;
//! * (c) skipping polls for known-empty master→slave flows.
//!
//! All five variants run concurrently through [`ExperimentRunner`].

use btgs_bench::{banner, be_total_kbps, BenchArgs};
use btgs_core::{
    BeSourceMix, CollectSink, ExperimentRunner, Improvements, MultiSink, PollerKind, ScenarioGrid,
    Topology,
};
use btgs_des::SimDuration;
use btgs_grid::OnlineAggregator;
use btgs_metrics::Table;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Ablation: §3.2 improvements (a)/(b)/(c)", &args);

    let variants: [(&str, Improvements); 5] = [
        ("none (fixed §3.1)", Improvements::NONE),
        (
            "(a) only",
            Improvements {
                packet_aware: true,
                replan_from_actual: false,
                skip_empty_downlink: false,
            },
        ),
        (
            "(a)+(b)",
            Improvements {
                packet_aware: true,
                replan_from_actual: true,
                skip_empty_downlink: false,
            },
        ),
        (
            "(b) only",
            Improvements {
                packet_aware: false,
                replan_from_actual: true,
                skip_empty_downlink: false,
            },
        ),
        ("(a)+(b)+(c) (§3.2)", Improvements::ALL),
    ];

    let grid = ScenarioGrid {
        pollers: variants
            .iter()
            .map(|(_, imp)| PollerKind::Custom(*imp))
            .collect(),
        piconets: vec![1],
        seeds: vec![args.seed],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: args.horizon(),
        warmup: SimDuration::from_secs(2),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    // Streamed execution: the in-memory collector and the bounded-memory
    // aggregator ride the same CellSink pass (grid-subsystem plumbing).
    let mut collect = CollectSink::new();
    let mut aggregate = OnlineAggregator::for_grid(&grid);
    {
        let mut sinks = MultiSink::new(vec![&mut collect, &mut aggregate]);
        ExperimentRunner::new()
            .run_grid_streaming(&grid, &mut sinks)
            .expect("ablation grid is valid");
    }
    let report = collect.into_report();

    let mut t = Table::new(vec![
        "improvements",
        "GS slots/s",
        "unsuccessful GS polls/s",
        "BE total [kbps]",
        "GS max delay",
        "violations",
    ]);
    // Grid order is poller-major with one seed and one requirement, so the
    // cells land exactly in variant order.
    for ((label, _), cell) in variants.iter().zip(&report.cells) {
        let window_s = cell.report.window().as_secs_f64();
        t.row(vec![
            (*label).into(),
            format!("{:.0}", cell.report.ledger.gs_total() as f64 / window_s),
            format!("{:.1}", cell.report.gs_polls.unsuccessful as f64 / window_s),
            format!("{:.1}", be_total_kbps(&cell.report)),
            cell.gs_max_delay().to_string(),
            cell.gs_violations().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("\nStreaming per-poller aggregate (bounded memory):");
    println!("{}", aggregate.summary_table().render());
    println!("Expected: every variant keeps the guarantee; GS slot usage falls as");
    println!("improvements are added. Improvement (c) has no effect in this scenario:");
    println!("the only master->slave GS flow (flow 2) shares its polls with uplink");
    println!("flow 3 (piggybacking), and polls with a possible uplink payload can");
    println!("never be skipped — the master cannot see the slave's queue.");
}
