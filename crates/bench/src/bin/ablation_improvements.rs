//! **Ablation B** — the three §3.2 improvements toggled individually:
//!
//! * (a) packet-size-aware postponement after a packet's last segment;
//! * (b) replanning unsuccessful polls from their actual time;
//! * (c) skipping polls for known-empty master→slave flows.

use btgs_bench::{banner, BenchArgs};
use btgs_core::{run_point, Improvements, PollerKind};
use btgs_baseband::AmAddr;
use btgs_des::SimDuration;
use btgs_metrics::Table;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Ablation: §3.2 improvements (a)/(b)/(c)", &args);

    let variants: [(&str, Improvements); 5] = [
        ("none (fixed §3.1)", Improvements::NONE),
        (
            "(a) only",
            Improvements {
                packet_aware: true,
                replan_from_actual: false,
                skip_empty_downlink: false,
            },
        ),
        (
            "(a)+(b)",
            Improvements {
                packet_aware: true,
                replan_from_actual: true,
                skip_empty_downlink: false,
            },
        ),
        (
            "(b) only",
            Improvements {
                packet_aware: false,
                replan_from_actual: true,
                skip_empty_downlink: false,
            },
        ),
        ("(a)+(b)+(c) (§3.2)", Improvements::ALL),
    ];

    let dreq = SimDuration::from_millis(40);
    let mut t = Table::new(vec![
        "improvements",
        "GS slots/s",
        "unsuccessful GS polls/s",
        "BE total [kbps]",
        "GS max delay",
        "violations",
    ]);
    for (label, improvements) in variants {
        let point = run_point(
            dreq,
            args.seed,
            args.horizon(),
            PollerKind::Custom(improvements),
        );
        let window_s = point.report.window().as_secs_f64();
        let max_delay = point
            .scenario
            .gs_plans
            .iter()
            .map(|p| point.report.flow(p.request.id).delay.max().expect("traffic"))
            .max()
            .expect("four GS flows");
        let violations: usize = point
            .scenario
            .gs_plans
            .iter()
            .map(|p| {
                point
                    .report
                    .flow(p.request.id)
                    .delay
                    .violations_of(p.achievable_bound)
            })
            .sum();
        let be_total: f64 = (4..=7u8)
            .map(|n| point.report.slave_throughput_kbps(AmAddr::new(n).expect("S4..S7")))
            .sum();
        t.row(vec![
            label.into(),
            format!("{:.0}", point.report.ledger.gs_total() as f64 / window_s),
            format!("{:.1}", point.report.gs_polls.unsuccessful as f64 / window_s),
            format!("{be_total:.1}"),
            max_delay.to_string(),
            violations.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: every variant keeps the guarantee; GS slot usage falls as");
    println!("improvements are added. Improvement (c) has no effect in this scenario:");
    println!("the only master->slave GS flow (flow 2) shares its polls with uplink");
    println!("flow 3 (piggybacking), and polls with a possible uplink payload can");
    println!("never be skipped — the master cannot see the slave's queue.");
}
