//! **§5 claim** — "A comparison with an SCO channel showed that PFP is able
//! to achieve delay bounds that approach the delay bounds that can be
//! achieved using an SCO channel. As opposed to an SCO channel, PFP can use
//! the saved bandwidth for retransmissions."
//!
//! Two piconets carry the same 64 kbps voice-like stream from S1 plus the
//! Fig. 4 best-effort load on S4–S7:
//!
//! * **SCO**: an HV3 link (30 voice bytes every 6 slots, 1/3 of all slots
//!   reserved, no retransmission);
//! * **PFP-GS**: a Guaranteed Service flow polled by the paper's variable
//!   interval poller.

use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType, ScoLink};
use btgs_bench::{banner, BenchArgs};
use btgs_core::{admit, AdmissionConfig, GsPoller, GsRequest};
use btgs_des::{DetRng, SimDuration, SimTime};
use btgs_metrics::Table;
use btgs_piconet::{FlowSpec, PiconetConfig, PiconetSim, RunReport, ScoBinding};
use btgs_pollers::PfpBePoller;
use btgs_traffic::{CbrSource, FlowId, Source};

fn s(n: u8) -> AmAddr {
    AmAddr::new(n).unwrap()
}

const VOICE_FLOW: FlowId = FlowId(1);

fn be_flows(config: PiconetConfig) -> PiconetConfig {
    let mut config = config;
    for (k, _) in btgs_core::BE_RATES_KBPS.iter().enumerate() {
        let sl = s(4 + k as u8);
        config = config
            .with_flow(FlowSpec::new(
                FlowId(5 + 2 * k as u32),
                sl,
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ))
            .with_flow(FlowSpec::new(
                FlowId(6 + 2 * k as u32),
                sl,
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ));
    }
    config
}

fn be_sources(seed: u64) -> Vec<Box<dyn Source>> {
    let root = DetRng::seed_from_u64(seed);
    let mut out: Vec<Box<dyn Source>> = Vec::new();
    for (k, kbps) in btgs_core::BE_RATES_KBPS.iter().enumerate() {
        let interval = SimDuration::from_secs_f64(176.0 * 8.0 / (kbps * 1000.0));
        for id in [FlowId(5 + 2 * k as u32), FlowId(6 + 2 * k as u32)] {
            let mut stream = root.stream(u64::from(id.0));
            let offset = SimTime::from_nanos(stream.below(interval.as_nanos()));
            out.push(Box::new(
                CbrSource::new(id, interval, 176, 176, stream).starting_at(offset),
            ));
        }
    }
    out
}

/// A 64 kbps voice stream: one 150-byte frame every 18.75 ms. The interval
/// is five HV3 reservation periods exactly, so the critically-loaded SCO
/// queue stays aligned with its drain grid (any misalignment at exactly
/// 8000 B/s would waste reservations and grow the queue without bound).
fn voice_source(seed: u64) -> Box<dyn Source> {
    let root = DetRng::seed_from_u64(seed);
    Box::new(CbrSource::new(
        VOICE_FLOW,
        SimDuration::from_micros(18_750),
        150,
        150,
        root.stream(u64::from(VOICE_FLOW.0)),
    ))
}

fn run_sco(args: &BenchArgs) -> RunReport {
    let config = be_flows(
        PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
            .with_warmup(SimDuration::from_secs(2))
            .with_sco(ScoBinding {
                slave: s(1),
                link: ScoLink::new(PacketType::Hv3, 0).expect("valid HV3 link"),
                voice_flow: Some(VOICE_FLOW),
            }),
    );
    let be = PfpBePoller::new(SimDuration::from_millis(25));
    let mut sim =
        PiconetSim::new(config, Box::new(be), Box::new(IdealChannel)).expect("valid SCO scenario");
    sim.add_source(voice_source(args.seed))
        .expect("voice source");
    for src in be_sources(args.seed) {
        sim.add_source(src).expect("BE source");
    }
    sim.run(args.horizon()).expect("SCO scenario runs")
}

fn run_pfp_gs(args: &BenchArgs) -> (RunReport, SimDuration) {
    let tspec = btgs_gs::TokenBucketSpec::for_cbr(0.018_75, 150, 150).expect("valid voice TSpec");
    let request = GsRequest::new(VOICE_FLOW, s(1), Direction::SlaveToMaster, tspec, 12_800.0);
    let outcome = admit(&[request], &AdmissionConfig::paper()).expect("one flow is admissible");
    let bound = outcome.flows[0].bound;
    let config = be_flows(
        PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
            .with_warmup(SimDuration::from_secs(2))
            .with_flow(FlowSpec::new(
                VOICE_FLOW,
                s(1),
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            )),
    );
    let poller = GsPoller::pfp(
        &outcome,
        SimTime::ZERO,
        Box::new(PfpBePoller::new(SimDuration::from_millis(25))),
    );
    let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(IdealChannel))
        .expect("valid GS scenario");
    sim.add_source(voice_source(args.seed))
        .expect("voice source");
    for src in be_sources(args.seed) {
        sim.add_source(src).expect("BE source");
    }
    (sim.run(args.horizon()).expect("GS scenario runs"), bound)
}

fn main() {
    let args = BenchArgs::parse(60);
    banner("SCO vs. PFP-GS voice transport (§5)", &args);

    let sco = run_sco(&args);
    let (gs, gs_bound) = run_pfp_gs(&args);

    let mut t = Table::new(vec!["metric", "SCO (HV3)", "PFP-GS"]);
    let delay_row = |r: &RunReport| {
        let d = &r.flow(VOICE_FLOW).delay;
        (
            d.mean().map_or("-".into(), |v| v.to_string()),
            d.quantile(0.99).map_or("-".into(), |v| v.to_string()),
            d.max().map_or("-".into(), |v| v.to_string()),
        )
    };
    let (sco_mean, sco_p99, sco_max) = delay_row(&sco);
    let (gs_mean, gs_p99, gs_max) = delay_row(&gs);
    t.row(vec!["voice mean delay".into(), sco_mean, gs_mean]);
    t.row(vec!["voice p99 delay".into(), sco_p99, gs_p99]);
    t.row(vec!["voice max delay".into(), sco_max, gs_max]);
    t.row(vec![
        "voice throughput [kbps]".into(),
        format!("{:.1}", sco.throughput_kbps(VOICE_FLOW)),
        format!("{:.1}", gs.throughput_kbps(VOICE_FLOW)),
    ]);
    t.row(vec![
        "analytical delay bound".into(),
        "<= 22.5 ms (sync + 5 HV3 drains)".into(),
        gs_bound.to_string(),
    ]);
    let window_s = sco.window().as_secs_f64();
    t.row(vec![
        "voice slots per second".into(),
        format!("{:.0}", sco.ledger.sco as f64 / window_s),
        format!("{:.0}", gs.ledger.gs_total() as f64 / window_s),
    ]);
    t.row(vec![
        "total BE throughput [kbps]".into(),
        format!(
            "{:.1}",
            (4..=7u8)
                .map(|n| sco.slave_throughput_kbps(s(n)))
                .sum::<f64>()
        ),
        format!(
            "{:.1}",
            (4..=7u8)
                .map(|n| gs.slave_throughput_kbps(s(n)))
                .sum::<f64>()
        ),
    ]);
    println!("{}", t.render());
    println!("Expected (paper): PFP-GS delay bounds approach SCO's, while consuming far");
    println!("fewer slots — slots an SCO link burns even when idle and that PFP can");
    println!("reuse for BE traffic or retransmissions.");
}
