//! **§4.2 claim** — "Simulation runs, each of a simulation time of 530
//! seconds (25 000 samples of each GS flow), showed that the requested
//! delay bound is not exceeded."
//!
//! For a grid of delay requirements and several seeds, runs the paper
//! scenario under PFP-GS and compares every GS flow's *measured maximum*
//! delay with its *achievable bound* (and the requested bound where the
//! flow is strictly guaranteed). Run with `--seconds 530` for the paper's
//! full length.
//!
//! **Scatternet mode** (`--scatternet`) — the multi-hop extension of the
//! same claim: across a pollers × seeds × piconet-count grid (including a
//! bidirectional shared-bridge configuration), every *admitted* chain's
//! measured end-to-end maximum delay must stay at or below the composed
//! analytic bound `Σ hop bounds + Σ worst-case residences`, and an
//! over-tight deadline must be provably rejected with every piconet's
//! admission ledger rolled back byte-identically.

use btgs_bench::{banner, BenchArgs};
use btgs_core::{run_point, BeSourceMix, ExperimentRunner, PollerKind, ScenarioGrid, Topology};
use btgs_des::SimDuration;
use btgs_metrics::Table;

fn main() {
    let args = BenchArgs::parse(60);
    if args.scatternet {
        scatternet_mode(&args);
        return;
    }
    banner("Delay bound validation (§4.2)", &args);

    let mut t = Table::new(vec![
        "Dreq",
        "seed",
        "flow",
        "rate [B/s]",
        "bound",
        "max delay",
        "p99",
        "samples",
        "violations",
    ]);
    let mut total_violations = 0usize;
    for &ms in &[28u64, 32, 36, 38, 40, 44, 46] {
        for seed in [args.seed, args.seed + 1, args.seed + 2] {
            let point = run_point(
                SimDuration::from_millis(ms),
                seed,
                args.horizon(),
                PollerKind::PfpGs,
            );
            for plan in &point.scenario.gs_plans {
                let delay = &point.report.flow(plan.request.id).delay;
                let max = delay.max().expect("GS flows see traffic");
                let violations = delay.violations_of(plan.achievable_bound);
                total_violations += violations;
                t.row(vec![
                    format!("{ms} ms"),
                    seed.to_string(),
                    plan.request.id.to_string(),
                    format!("{:.0}", plan.request.rate),
                    plan.achievable_bound.to_string(),
                    max.to_string(),
                    delay.quantile(0.99).expect("non-empty").to_string(),
                    delay.count().to_string(),
                    violations.to_string(),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "total bound violations: {total_violations} (paper: the requested bound is never exceeded)"
    );
    assert_eq!(total_violations, 0, "delay guarantee broken!");
}

/// The multi-hop validation: measured e2e p100 ≤ composed bound for every
/// admitted chain, plus a provable rejection with verified rollback.
fn scatternet_mode(args: &BenchArgs) {
    banner("Multi-hop delay bound validation (scatternet mode)", args);

    let mut t = Table::new(vec![
        "piconets",
        "poller",
        "seed",
        "chain",
        "deadline",
        "composed bound",
        "e2e max",
        "e2e p99",
        "residence max",
        "delivered",
        "violations",
    ]);
    let mut total_violations = 0usize;
    let mut chains_checked = 0usize;
    // Per piconet count, the tightest deadline the smoke grid admits with
    // margin (see `ScatternetScenario`'s admission-path tests for the
    // budget arithmetic). Both grids run bidirectional chains, so every
    // bridge carries guaranteed traffic in both rendezvous windows.
    for &(piconets, deadline_ms) in &[(2u16, 150u64), (3, 260)] {
        let grid = ScenarioGrid {
            pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
            piconets: vec![piconets],
            seeds: vec![args.seed, args.seed + 1],
            topologies: vec![Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(46)],
            chain_deadlines: vec![Some(SimDuration::from_millis(deadline_ms))],
            bidirectional: true,
            bridge_cycle: SimDuration::from_millis(10),
            horizon: args.horizon(),
            warmup: SimDuration::from_secs(1),
            include_be: true,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        };
        let report = ExperimentRunner::new()
            .try_run_grid(&grid)
            .expect("the smoke grid is admissible by construction");
        for cell in &report.cells {
            let scatter = cell.scatternet.as_ref().expect("scatternet cells");
            for (ci, chain) in scatter.report.chains.iter().enumerate() {
                let grant = &scatter.scenario.chain_grants[ci];
                let max = chain.e2e.max().expect("admitted chains deliver");
                let violations = chain.e2e.violations_of(grant.composed_bound);
                total_violations += violations;
                chains_checked += 1;
                t.row(vec![
                    piconets.to_string(),
                    cell.cell.poller.label(),
                    cell.cell.seed.to_string(),
                    ci.to_string(),
                    grant.deadline.to_string(),
                    grant.composed_bound.to_string(),
                    max.to_string(),
                    chain.e2e.quantile(0.99).expect("non-empty").to_string(),
                    chain
                        .residence
                        .max()
                        .expect("bridged chains cross")
                        .to_string(),
                    chain.delivered_packets.to_string(),
                    violations.to_string(),
                ]);
                assert!(
                    chain.delivered_packets > 0,
                    "an admitted chain must deliver"
                );
            }
        }
    }
    println!("{}", t.render());

    // The rejection half of the claim: an over-deadline request is
    // refused at grid-validation time (no cell ever runs) …
    let mut hopeless = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs],
        piconets: vec![2],
        seeds: vec![args.seed],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(46)],
        chain_deadlines: vec![Some(SimDuration::from_millis(25))],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(10),
        horizon: args.horizon(),
        warmup: SimDuration::from_secs(1),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    let err = hopeless
        .validate()
        .expect_err("a 25 ms two-hop deadline is below the fixed terms");
    println!("over-tight deadline rejected at grid construction: {err}");
    hopeless.chain_deadlines = vec![Some(SimDuration::from_millis(150))];
    hopeless.validate().expect("the feasible variant validates");

    // … and rejection by the controller itself leaves every traversed
    // piconet's ledger byte-identical (rollback).
    {
        use btgs_baseband::{AmAddr, Direction, PiconetId};
        use btgs_core::AdmissionConfig;
        use btgs_core::{
            paper_tspec, ChainHopSpec, ChainRequest, GsRequest, ScatternetAdmissionController,
        };
        use btgs_traffic::FlowId;

        let mut ctl = ScatternetAdmissionController::new(AdmissionConfig::paper(), 2);
        for pic in 0..2u8 {
            for k in 1..=2u32 {
                ctl.try_admit_local(
                    PiconetId(pic.into()),
                    GsRequest::new(
                        FlowId(100 * pic as u32 + k),
                        AmAddr::new(k as u8).unwrap(),
                        Direction::SlaveToMaster,
                        paper_tspec(),
                        8_800.0,
                    ),
                )
                .expect("seed flows admit");
            }
        }
        let fingerprint = |ctl: &ScatternetAdmissionController| {
            (0..2u8)
                .map(|p| format!("{:?}", ctl.piconet(PiconetId(p.into())).outcome()))
                .collect::<Vec<_>>()
                .join(";")
        };
        let before = fingerprint(&ctl);
        let hop = |p: u8, flow: u32, slave: u8, dir| ChainHopSpec {
            piconet: PiconetId(p.into()),
            flow: FlowId(flow),
            slave: AmAddr::new(slave).unwrap(),
            direction: dir,
            residence_in: SimDuration::from_millis(5),
            absence: SimDuration::from_micros(8_750),
        };
        let rejected = ctl
            .admit_chain(ChainRequest {
                id: 1,
                tspec: paper_tspec(),
                deadline: SimDuration::from_millis(25),
                hops: vec![
                    hop(0, 901, 6, Direction::MasterToSlave),
                    hop(1, 902, 7, Direction::SlaveToMaster),
                ],
            })
            .cloned();
        assert!(rejected.is_err(), "25 ms is below the fixed terms");
        assert_eq!(
            fingerprint(&ctl),
            before,
            "rejection left residue in a piconet ledger"
        );
        println!(
            "controller rejection verified with rollback: {}",
            rejected.unwrap_err()
        );
    }

    println!(
        "\nchains checked: {chains_checked}; composed-bound violations: {total_violations} \
         (claim: measured e2e p100 ≤ Σ hop bounds + Σ residences)"
    );
    assert!(chains_checked >= 16, "smoke grid shrank unexpectedly");
    assert_eq!(total_violations, 0, "multi-hop delay guarantee broken!");
}
