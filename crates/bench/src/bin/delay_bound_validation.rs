//! **§4.2 claim** — "Simulation runs, each of a simulation time of 530
//! seconds (25 000 samples of each GS flow), showed that the requested
//! delay bound is not exceeded."
//!
//! For a grid of delay requirements and several seeds, runs the paper
//! scenario under PFP-GS and compares every GS flow's *measured maximum*
//! delay with its *achievable bound* (and the requested bound where the
//! flow is strictly guaranteed). Run with `--seconds 530` for the paper's
//! full length.

use btgs_bench::{banner, BenchArgs};
use btgs_core::{run_point, PollerKind};
use btgs_des::SimDuration;
use btgs_metrics::Table;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Delay bound validation (§4.2)", &args);

    let mut t = Table::new(vec![
        "Dreq",
        "seed",
        "flow",
        "rate [B/s]",
        "bound",
        "max delay",
        "p99",
        "samples",
        "violations",
    ]);
    let mut total_violations = 0usize;
    for &ms in &[28u64, 32, 36, 38, 40, 44, 46] {
        for seed in [args.seed, args.seed + 1, args.seed + 2] {
            let point = run_point(
                SimDuration::from_millis(ms),
                seed,
                args.horizon(),
                PollerKind::PfpGs,
            );
            for plan in &point.scenario.gs_plans {
                let delay = &point.report.flow(plan.request.id).delay;
                let max = delay.max().expect("GS flows see traffic");
                let violations = delay.violations_of(plan.achievable_bound);
                total_violations += violations;
                t.row(vec![
                    format!("{ms} ms"),
                    seed.to_string(),
                    plan.request.id.to_string(),
                    format!("{:.0}", plan.request.rate),
                    plan.achievable_bound.to_string(),
                    max.to_string(),
                    delay.quantile(0.99).expect("non-empty").to_string(),
                    delay.count().to_string(),
                    violations.to_string(),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "total bound violations: {total_violations} (paper: the requested bound is never exceeded)"
    );
    assert_eq!(total_violations, 0, "delay guarantee broken!");
}
