//! **Table A** — the analytical values woven through the paper's §4.1.
//!
//! Regenerates, from the library's formulas alone (no simulation): the
//! TSpec (Eqs. 11–12), `eta_min`, the `C`/`D` error terms, `U`, the poll
//! intervals `x_i`, the Fig. 2 `y` values, the maximum admissible rate
//! `R_max` (Eq. 9), the minimum supportable delay requirement, and the
//! never-exceeded bound `D_max` at `R = r`.

use btgs_baseband::{AmAddr, Direction};
use btgs_bench::{banner, BenchArgs};
use btgs_core::{
    admit, max_admissible_rate, min_poll_efficiency, paper_tspec, piconet_u, AdmissionConfig,
    GsRequest,
};
use btgs_des::SimDuration;
use btgs_gs::{delay_bound, ErrorTerms};
use btgs_metrics::Table;
use btgs_piconet::SarPolicy;
use btgs_traffic::FlowId;

fn main() {
    // Purely analytical; the duration flag is accepted but unused.
    let args = BenchArgs::parse(1);
    banner("Table A: analytical values of §4.1", &args);

    let tspec = paper_tspec();
    let cfg = AdmissionConfig::paper();
    let eta = min_poll_efficiency(
        &SarPolicy::MaxFirst,
        tspec.min_policed_unit(),
        tspec.max_packet(),
        &cfg.allowed_types,
    );
    let u = piconet_u(&cfg.allowed_types);

    let mut t = Table::new(vec!["quantity", "value", "paper"]);
    t.row(vec![
        "TSpec p = r".into(),
        format!("{} B/s", tspec.token_rate()),
        "8.8 kB/s".into(),
    ]);
    t.row(vec![
        "TSpec b = M".into(),
        format!("{} B", tspec.bucket_depth()),
        "176 B".into(),
    ]);
    t.row(vec![
        "TSpec m".into(),
        format!("{} B", tspec.min_policed_unit()),
        "144 B".into(),
    ]);
    t.row(vec![
        "eta_min (Eq. 4)".into(),
        format!("{eta} B/poll"),
        "144 B".into(),
    ]);
    t.row(vec![
        "C error term (Eq. 7)".into(),
        format!("{eta} B"),
        "144 B".into(),
    ]);
    t.row(vec!["U (Fig. 2)".into(), u.to_string(), "3.75 ms".into()]);

    let s = |n| AmAddr::new(n).unwrap();
    let reqs = vec![
        GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(2), s(2), Direction::MasterToSlave, tspec, 8800.0),
        GsRequest::new(FlowId(3), s(2), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(4), s(3), Direction::SlaveToMaster, tspec, 8800.0),
    ];
    let out = admit(&reqs, &AdmissionConfig::paper()).expect("the paper's set is admissible");
    for g in &out.flows {
        let e = &out.entities[g.entity];
        t.row(vec![
            format!("x, y of {} (Eqs. 5, Fig. 2)", g.id),
            format!("x = {}, y = {}", e.x, e.y),
            match g.id.0 {
                1 => "x = 16.36 ms, y = 3.75 ms".into(),
                2 | 3 => "x = 16.36 ms, y = 7.5 ms".into(),
                _ => "x = 16.36 ms, y = 11.25 ms".into(),
            },
        ]);
    }
    let y_worst = out.entities.last().expect("non-empty").y;
    let r_max = max_admissible_rate(eta, y_worst);
    t.row(vec![
        "R_max at lowest priority (Eq. 9)".into(),
        format!("{r_max} B/s"),
        "12.8 kB/s".into(),
    ]);
    let dmin = delay_bound(&tspec, r_max, ErrorTerms::new(eta, y_worst)).expect("r_max >= r");
    t.row(vec![
        "minimum supportable Dreq".into(),
        dmin.to_string(),
        "36.25 ms".into(),
    ]);
    let dmax = delay_bound(&tspec, tspec.token_rate(), ErrorTerms::new(eta, y_worst))
        .expect("token rate is admissible");
    t.row(vec![
        "D_max at R = r (never exceeded)".into(),
        dmax.to_string(),
        "~47.6 ms".into(),
    ]);
    let _ = SimDuration::ZERO;
    println!("{}", t.render());
}
