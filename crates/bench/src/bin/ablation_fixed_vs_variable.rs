//! **Ablation A** — fixed-interval (§3.1) vs. variable-interval (§3.2)
//! polling: the motivation for the paper's improvements.
//!
//! Both pollers provide the same delay guarantee; the fixed poller simply
//! polls more often than needed, burning slots that the variable poller
//! leaves to best-effort traffic. The 2 × 3 grid runs in parallel through
//! [`ExperimentRunner`].

use btgs_bench::{banner, be_total_kbps, BenchArgs};
use btgs_core::{
    BeSourceMix, CollectSink, ExperimentRunner, MultiSink, PollerKind, ScenarioGrid, Topology,
};
use btgs_des::SimDuration;
use btgs_grid::OnlineAggregator;
use btgs_metrics::Table;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Ablation: fixed vs. variable interval poller", &args);

    let grid = ScenarioGrid {
        pollers: vec![PollerKind::FixedGs, PollerKind::PfpGs],
        piconets: vec![1],
        seeds: vec![args.seed],
        topologies: vec![Topology::Chain],
        delay_requirements: [36u64, 40, 46]
            .iter()
            .map(|&ms| SimDuration::from_millis(ms))
            .collect(),
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: args.horizon(),
        warmup: SimDuration::from_secs(2),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    // Streamed execution through the grid subsystem's sinks.
    let mut collect = CollectSink::new();
    let mut aggregate = OnlineAggregator::for_grid(&grid);
    {
        let mut sinks = MultiSink::new(vec![&mut collect, &mut aggregate]);
        ExperimentRunner::new()
            .run_grid_streaming(&grid, &mut sinks)
            .expect("ablation grid is valid");
    }
    let report = collect.into_report();

    let mut t = Table::new(vec![
        "Dreq",
        "poller",
        "GS slots/s",
        "GS overhead slots/s",
        "unsuccessful GS polls/s",
        "BE total [kbps]",
        "GS max delay",
        "violations",
    ]);
    // Render requirement-major (the paper's reading order); the grid itself
    // is poller-major.
    for &dreq in &grid.delay_requirements {
        for &kind in &grid.pollers {
            let label = match kind {
                PollerKind::FixedGs => "fixed (§3.1)",
                _ => "variable (§3.2)",
            };
            let cell = report
                .cells
                .iter()
                .find(|c| c.cell.poller == kind && c.cell.delay_requirement == dreq)
                .expect("cell present in grid");
            let window_s = cell.report.window().as_secs_f64();
            t.row(vec![
                dreq.to_string(),
                label.into(),
                format!("{:.0}", cell.report.ledger.gs_total() as f64 / window_s),
                format!("{:.0}", cell.report.ledger.gs_overhead as f64 / window_s),
                format!("{:.1}", cell.report.gs_polls.unsuccessful as f64 / window_s),
                format!("{:.1}", be_total_kbps(&cell.report)),
                cell.gs_max_delay().to_string(),
                cell.gs_violations().to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("\nStreaming per-poller aggregate (bounded memory):");
    println!("{}", aggregate.summary_table().render());
    println!("Expected: both meet the bound (violations = 0); the variable poller");
    println!("spends fewer GS slots, leaving more for BE — the §3.2 claim.");
}
