//! **Ablation A** — fixed-interval (§3.1) vs. variable-interval (§3.2)
//! polling: the motivation for the paper's improvements.
//!
//! Both pollers provide the same delay guarantee; the fixed poller simply
//! polls more often than needed, burning slots that the variable poller
//! leaves to best-effort traffic.

use btgs_bench::{banner, BenchArgs};
use btgs_core::{run_point, PollerKind};
use btgs_baseband::AmAddr;
use btgs_des::SimDuration;
use btgs_metrics::Table;

fn main() {
    let args = BenchArgs::parse(60);
    banner("Ablation: fixed vs. variable interval poller", &args);

    let mut t = Table::new(vec![
        "Dreq",
        "poller",
        "GS slots/s",
        "GS overhead slots/s",
        "unsuccessful GS polls/s",
        "BE total [kbps]",
        "GS max delay",
        "violations",
    ]);
    for &ms in &[36u64, 40, 46] {
        for (kind, label) in [
            (PollerKind::FixedGs, "fixed (§3.1)"),
            (PollerKind::PfpGs, "variable (§3.2)"),
        ] {
            let point = run_point(SimDuration::from_millis(ms), args.seed, args.horizon(), kind);
            let window_s = point.report.window().as_secs_f64();
            let max_delay = point
                .scenario
                .gs_plans
                .iter()
                .map(|p| {
                    point
                        .report
                        .flow(p.request.id)
                        .delay
                        .max()
                        .expect("GS flows see traffic")
                })
                .max()
                .expect("four GS flows");
            let violations: usize = point
                .scenario
                .gs_plans
                .iter()
                .map(|p| {
                    point
                        .report
                        .flow(p.request.id)
                        .delay
                        .violations_of(p.achievable_bound)
                })
                .sum();
            let be_total: f64 = (4..=7u8)
                .map(|n| {
                    point
                        .report
                        .slave_throughput_kbps(AmAddr::new(n).expect("S4..S7"))
                })
                .sum();
            t.row(vec![
                format!("{ms} ms"),
                label.into(),
                format!("{:.0}", point.report.ledger.gs_total() as f64 / window_s),
                format!("{:.0}", point.report.ledger.gs_overhead as f64 / window_s),
                format!("{:.1}", point.report.gs_polls.unsuccessful as f64 / window_s),
                format!("{be_total:.1}"),
                max_delay.to_string(),
                violations.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Expected: both meet the bound (violations = 0); the variable poller");
    println!("spends fewer GS slots, leaving more for BE — the §3.2 claim.");
}
