//! Sharded-grid worker process.
//!
//! Reads one shard spec (JSON: grid + shard id + cell indices, see
//! `btgs_grid::wire`) from **stdin**, simulates each listed cell, and
//! writes one length-prefixed frame per completed cell to **stdout**,
//! flushing after each so the parent streams results as they finish.
//! Diagnostics go to stderr. Spawned by `btgs_grid::ShardedGridRunner`
//! (see the `grid_smoke` binary and `crates/bench/tests/grid_sharded.rs`
//! for parents).
//!
//! Fault injection for the crash-recovery tests:
//! `BTGS_GRID_CRASH_AFTER_CELLS=<n>` aborts after `n` cells, and
//! `BTGS_GRID_CRASH_TORN=1` additionally emits a half-written frame
//! first — simulating a worker killed mid-write.

use btgs_grid::{fault_injection_from_env, run_worker};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut spec = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut spec) {
        eprintln!("grid_worker: cannot read shard spec from stdin: {e}");
        return ExitCode::FAILURE;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match run_worker(&spec, &mut out, &fault_injection_from_env()) {
        Ok(cells) => {
            eprintln!("grid_worker: completed {cells} cell(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("grid_worker: {e}");
            ExitCode::FAILURE
        }
    }
}
