//! Multi-process sharded-runner contract tests.
//!
//! The acceptance bar: a sharded run of a ≥ 64-cell grid produces a
//! `GridReport` **byte-identical** to the single-process
//! `ExperimentRunner` at any worker count (1, 2, 4), including after a
//! worker is killed mid-shard and the run resumed from checkpoints.
//!
//! These tests spawn the real `grid_worker` binary
//! (`CARGO_BIN_EXE_grid_worker`), so they cover the full pipeline:
//! partitioning, the spec hand-off on stdin, length-prefixed frames over
//! stdout, checkpoint append/replay/truncation, retry, and the merge.

use btgs_core::{
    comparison_pollers, BeSourceMix, CellResult, CellSink, ExperimentRunner, ScenarioGrid, Topology,
};
use btgs_des::{SimDuration, SimTime};
use btgs_grid::{GridPartitioner, JsonlSpillSink, OnlineAggregator, ShardedGridRunner};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

fn worker_bin() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_grid_worker"))
}

/// The crash-injection env vars are process-global and inherited by every
/// spawned worker, so tests that spawn workers must not overlap.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> MutexGuard<'static, ()> {
    ENV_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fresh scratch dir per test (removed on success; kept for post-mortem
/// on failure).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("btgs-grid-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// 4 pollers × 2 piconet counts × 4 seeds × 2 BE load scales = 64
/// cells (the acceptance floor), scatternet cells included.
fn grid_64() -> ScenarioGrid {
    ScenarioGrid {
        pollers: comparison_pollers(),
        piconets: vec![1, 2],
        seeds: (1..=4).collect(),
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(1),
        warmup: SimDuration::from_millis(250),
        include_be: true,
        be_load_scale: vec![1.0, 1.5],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    }
}

/// A smaller mixed grid including scatternet cells (heavier per cell).
fn grid_scatternet() -> ScenarioGrid {
    ScenarioGrid {
        pollers: vec![btgs_core::PollerKind::PfpGs],
        piconets: vec![1, 2],
        seeds: vec![1, 2],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(1),
        warmup: SimDuration::from_millis(250),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    }
}

#[test]
fn sharded_64_cell_grid_is_byte_identical_at_any_worker_count() {
    let _env = env_guard();
    let grid = grid_64();
    assert_eq!(grid.cells().len(), 64);
    let reference = ExperimentRunner::new().run_grid(&grid);
    let ref_digest = reference.digest();
    let ref_table = reference.summary_table().render();

    for workers in [1, 2, 4] {
        let dir = scratch(&format!("workers{workers}"));
        let mut aggregator = OnlineAggregator::for_grid(&grid);
        let outcome = ShardedGridRunner::new(worker_bin(), &dir, workers)
            .with_partitioner(GridPartitioner::with_target_cells_per_shard(8))
            .run_observed(&grid, &mut aggregator)
            .expect("sharded run completes");
        assert_eq!(
            outcome.report.digest(),
            ref_digest,
            "{workers} workers: digest mismatch"
        );
        assert_eq!(
            outcome.report.summary_table().render(),
            ref_table,
            "{workers} workers: summary mismatch"
        );
        assert_eq!(outcome.executed_cells, 64);
        assert_eq!(outcome.replayed_cells, 0);
        assert!(outcome.workers_spawned >= workers.min(8));
        assert_eq!(aggregator.cells(), 64, "sink saw every streamed cell");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn scatternet_cells_cross_the_process_boundary_intact() {
    let _env = env_guard();
    let grid = grid_scatternet();
    let reference = ExperimentRunner::new().run_grid(&grid);
    let dir = scratch("scatternet");
    let outcome = ShardedGridRunner::new(worker_bin(), &dir, 2)
        .with_partitioner(GridPartitioner::with_target_cells_per_shard(1))
        .run(&grid)
        .expect("sharded run completes");
    assert_eq!(outcome.report.digest(), reference.digest());
    // Chain statistics survived the wire with exact sums.
    for (a, b) in reference.cells.iter().zip(&outcome.report.cells) {
        match (&a.scatternet, &b.scatternet) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(
                    x.report.chains[0].e2e.sum_nanos(),
                    y.report.chains[0].e2e.sum_nanos()
                );
                assert_eq!(x.report.events_processed, y.report.events_processed);
            }
            _ => panic!("scatternet presence mismatch"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill a worker mid-shard (torn frame included), then resume: the
/// merged report must be byte-identical to an uninterrupted run, with
/// the first run's completed cells replayed from checkpoints rather
/// than re-simulated.
#[test]
fn kill_and_resume_is_byte_identical() {
    let _env = env_guard();
    let grid = grid_64();
    let reference = ExperimentRunner::new().run_grid(&grid);
    let dir = scratch("resume");

    // First attempt: every worker crashes after 3 cells, mid-write, and
    // with retries disabled the run must report Incomplete.
    std::env::set_var("BTGS_GRID_CRASH_AFTER_CELLS", "3");
    std::env::set_var("BTGS_GRID_CRASH_TORN", "1");
    let crashed = ShardedGridRunner::new(worker_bin(), &dir, 2)
        .with_partitioner(GridPartitioner::with_target_cells_per_shard(8))
        .with_retries(0)
        .run(&grid);
    std::env::remove_var("BTGS_GRID_CRASH_AFTER_CELLS");
    std::env::remove_var("BTGS_GRID_CRASH_TORN");
    let err = crashed.expect_err("crashing workers must not complete the run");
    let msg = err.to_string();
    assert!(msg.contains("incomplete"), "{msg}");

    // Resume: checkpoints hold the partial results; the rerun replays
    // them and only simulates the remainder.
    let mut aggregator = OnlineAggregator::for_grid(&grid);
    let outcome = ShardedGridRunner::new(worker_bin(), &dir, 4)
        .with_partitioner(GridPartitioner::with_target_cells_per_shard(8))
        .run_observed(&grid, &mut aggregator)
        .expect("resume completes");
    assert!(
        outcome.replayed_cells > 0,
        "the crashed run's cells must be replayed, not re-simulated"
    );
    assert_eq!(outcome.replayed_cells + outcome.executed_cells, 64);
    assert_eq!(
        outcome.report.digest(),
        reference.digest(),
        "kill-and-resume changed the merged report"
    );
    assert_eq!(
        outcome.report.summary_table().render(),
        reference.summary_table().render()
    );
    assert_eq!(aggregator.cells(), 64, "replayed cells reach the sink too");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// With retries enabled, a single crash wave self-heals in one call.
#[test]
fn retries_recover_from_crashes_within_one_run() {
    let _env = env_guard();
    let grid = grid_scatternet();
    let reference = ExperimentRunner::new().run_grid(&grid);
    let dir = scratch("retry");
    // Every spawned worker crashes after writing one cell, so each
    // attempt banks exactly one more cell per live shard into the
    // checkpoints; with 4 cells across up-to-4-cell shards, 4 retries
    // are guaranteed to drain the grid within one `run` call (retries
    // re-dispatch only each shard's missing remainder).
    std::env::set_var("BTGS_GRID_CRASH_AFTER_CELLS", "1");
    let outcome = ShardedGridRunner::new(worker_bin(), &dir, 2)
        .with_partitioner(GridPartitioner::with_target_cells_per_shard(4))
        .with_retries(4)
        .run(&grid);
    std::env::remove_var("BTGS_GRID_CRASH_AFTER_CELLS");
    let outcome = outcome.expect("retries drain the crash-looping shards");
    assert_eq!(outcome.executed_cells, 4);
    assert_eq!(outcome.report.digest(), reference.digest());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The spill archive equals the grid: one parseable frame per cell, and
/// a fresh aggregation of the spill matches the live aggregation.
#[test]
fn spill_archive_round_trips_through_frames() {
    let _env = env_guard();
    let grid = grid_scatternet();
    let dir = scratch("spill");
    let spill_path = dir.join("cells.jsonl");
    let mut live = OnlineAggregator::for_grid(&grid);
    let mut spill = JsonlSpillSink::create(&spill_path, &grid).expect("spill");
    {
        let mut sinks = btgs_core::MultiSink::new(vec![&mut live, &mut spill]);
        ShardedGridRunner::new(worker_bin(), &dir.join("ckpt"), 2)
            .run_observed(&grid, &mut sinks)
            .expect("sharded run completes");
    }
    let (path, lines) = spill.finish().unwrap();
    assert_eq!(lines, grid.cells().len() as u64);

    // Re-aggregate from the archive alone.
    let cells = grid.cells();
    let digest = btgs_grid::wire::grid_digest(&grid);
    let mut replayed = OnlineAggregator::for_grid(&grid);
    for line in std::fs::read_to_string(&path).unwrap().lines() {
        let frame = btgs_grid::wire::frame_from_json(line).unwrap();
        assert_eq!(frame.grid_digest, digest);
        assert_eq!(frame.cell, cells[frame.index]);
        let result = CellResult::reassemble(frame.cell, frame.outcome);
        replayed.accept(frame.index, &result);
    }
    assert_eq!(replayed.digest(), live.digest());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The bounded-memory entry point retains nothing in the parent but
/// feeds the sink identically: its aggregation equals the retaining
/// run's, cell for cell.
#[test]
fn run_streaming_feeds_sinks_without_retaining_results() {
    let _env = env_guard();
    let grid = grid_scatternet();
    let dir = scratch("streaming");

    let mut retained = OnlineAggregator::for_grid(&grid);
    let outcome = ShardedGridRunner::new(worker_bin(), &dir.join("a"), 2)
        .run_observed(&grid, &mut retained)
        .expect("retaining run completes");

    let mut streamed = OnlineAggregator::for_grid(&grid);
    let stats = ShardedGridRunner::new(worker_bin(), &dir.join("b"), 2)
        .run_streaming(&grid, &mut streamed)
        .expect("streaming run completes");
    assert_eq!(stats.cells, grid.cells().len());
    assert_eq!(stats.executed_cells, grid.cells().len());
    assert_eq!(streamed.digest(), retained.digest());
    assert_eq!(streamed.cells(), outcome.report.cells.len() as u64);

    // Resume works identically without retention: a second streaming
    // run replays everything from checkpoints.
    let mut again = OnlineAggregator::for_grid(&grid);
    let stats = ShardedGridRunner::new(worker_bin(), &dir.join("b"), 2)
        .run_streaming(&grid, &mut again)
        .expect("streaming resume completes");
    assert_eq!(stats.replayed_cells, grid.cells().len());
    assert_eq!(stats.executed_cells, 0);
    assert_eq!(again.digest(), retained.digest());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoints from a *different* grid are ignored (content
/// addressing), not merged.
#[test]
fn foreign_checkpoints_are_never_merged() {
    let _env = env_guard();
    let grid_a = grid_scatternet();
    let mut grid_b = grid_scatternet();
    grid_b.seeds = vec![7, 8]; // different grid, different digest
    let dir = scratch("foreign");

    let runner = ShardedGridRunner::new(worker_bin(), &dir, 2);
    let a = runner.run(&grid_a).expect("run A");
    // Run B into the same checkpoint dir: shard ids differ, so nothing
    // of A's is replayed.
    let b = runner.run(&grid_b).expect("run B");
    assert_eq!(a.replayed_cells, 0);
    assert_eq!(b.replayed_cells, 0, "foreign checkpoints must not replay");
    assert_ne!(a.report.digest(), b.report.digest());
    // Re-running A now replays everything and simulates nothing.
    let again = runner.run(&grid_a).expect("rerun A");
    assert_eq!(again.replayed_cells, grid_a.cells().len());
    assert_eq!(again.executed_cells, 0);
    assert_eq!(again.report.digest(), a.report.digest());
    std::fs::remove_dir_all(&dir).unwrap();
}
