//! CI enforcement of the allocation-free hot paths (ROADMAP item).
//!
//! Installs the counting global allocator and asserts a **zero** allocation
//! delta across three hot loops:
//!
//! 1. every poller's per-decision path,
//! 2. the DES engine's event loop (timing-wheel push/pop cycle),
//! 3. the full piconet simulator's steady state, bracketed inside a run
//!    via [`PiconetSim::run_probed`] after warm-up growth has settled.
//!
//! The binary runs **without the libtest harness** (`harness = false`):
//! the allocation counter is process-global, and even an otherwise idle
//! harness occasionally allocates from its controller thread, which would
//! make a zero-delta assertion flaky. Here `main` is the only thread.

use btgs_baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs_bench::alloc_counter::{allocation_count, CountingAllocator};
use btgs_core::{
    BeSourceMix, PaperScenario, PaperScenarioParams, PollerKind, ScatternetScenario,
    ScatternetScenarioParams, Topology,
};
use btgs_des::{DetRng, SimDuration, SimTime, Simulator};
use btgs_piconet::{FlowQueue, FlowSpec, FlowTable, MasterView, PiconetSim, Poller};
use btgs_pollers::{
    ExhaustiveRoundRobinPoller, FepPoller, HolPriorityPoller, PfpBePoller, RoundRobinPoller,
};
use btgs_traffic::{CbrSource, FlowId};
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The paper's Fig. 4 flow layout (4 GS + 8 BE flows over 7 slaves).
fn fig4_flows() -> Vec<FlowSpec> {
    let s = |n| AmAddr::new(n).unwrap();
    let mut out = Vec::new();
    let gs = [
        (1, 1, Direction::SlaveToMaster),
        (2, 2, Direction::MasterToSlave),
        (3, 2, Direction::SlaveToMaster),
        (4, 3, Direction::SlaveToMaster),
    ];
    for (id, slave, dir) in gs {
        out.push(FlowSpec::new(
            FlowId(id),
            s(slave),
            dir,
            LogicalChannel::GuaranteedService,
        ));
    }
    for k in 0..4u32 {
        let sl = s(4 + k as u8);
        out.push(FlowSpec::new(
            FlowId(5 + 2 * k),
            sl,
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        ));
        out.push(FlowSpec::new(
            FlowId(6 + 2 * k),
            sl,
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ));
    }
    out
}

/// Drives `poller.decide` across moving instants; returns the allocation
/// delta over the timed loop (after a warm-up pass that may register
/// per-slave state).
fn decide_loop_allocs(poller: &mut dyn Poller) -> u64 {
    let table = FlowTable::new(fig4_flows()).unwrap();
    let queues: Vec<Option<FlowQueue>> = table
        .specs()
        .iter()
        .map(|f| f.direction.is_downlink().then(FlowQueue::new))
        .collect();
    let mut t = 0u64;
    let mut run = |n: u32, t: &mut u64| {
        for _ in 0..n {
            *t += 1_250_000;
            let now = SimTime::from_nanos(*t);
            let view = MasterView::new(now, &table, &queues);
            black_box(poller.decide(now, &view));
        }
    };
    run(64, &mut t); // warm-up: first-decision registration may allocate
    let before = allocation_count();
    run(4096, &mut t);
    allocation_count() - before
}

fn poller_decisions_are_allocation_free() {
    let pollers: Vec<(&str, Box<dyn Poller>)> = vec![
        ("round-robin", Box::new(RoundRobinPoller::new())),
        ("exhaustive", Box::new(ExhaustiveRoundRobinPoller::new())),
        (
            "fep",
            Box::new(FepPoller::new(SimDuration::from_millis(25))),
        ),
        ("hol", Box::new(HolPriorityPoller::new())),
        (
            "pfp-be",
            Box::new(PfpBePoller::new(SimDuration::from_millis(25))),
        ),
    ];
    for (name, mut poller) in pollers {
        let delta = decide_loop_allocs(poller.as_mut());
        assert_eq!(delta, 0, "poller '{name}' allocated {delta} times");
    }
}

fn des_event_loop_is_allocation_free() {
    let mut sim = Simulator::new(0u64);
    sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
    // Warm-up: grow arena/bucket capacities across a full L0 window cycle.
    sim.run_until(SimTime::from_millis(300), |sched, count, ()| {
        *count += 1;
        sched.schedule_in(SimDuration::from_millis(1), ());
    });
    let before = allocation_count();
    sim.run_until(SimTime::from_millis(2_300), |sched, count, ()| {
        *count += 1;
        sched.schedule_in(SimDuration::from_millis(1), ());
    });
    let delta = allocation_count() - before;
    assert_eq!(delta, 0, "DES event loop allocated {delta} times");
    assert!(*sim.state() > 2_000, "loop actually ran");
}

fn sim_steady_state_is_allocation_free() {
    // The paper scenario without the (deliberately overloading) BE flows:
    // queues stay bounded, so after warm-up the event loop must not touch
    // the allocator at all — queue slots, wheel buckets, poller state and
    // report buffers all recycle.
    let scenario = PaperScenario::build(PaperScenarioParams {
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: false,
        ..Default::default()
    });
    let poller = scenario.poller(PollerKind::PfpGs);
    let mut sim = PiconetSim::new(
        scenario.config.clone(),
        Box::new(poller),
        Box::new(IdealChannel),
    )
    .unwrap();
    for src in scenario.sources() {
        sim.add_source(src).unwrap();
    }
    // Bracket simulated seconds 2..6 inside the run: the first probe fires
    // at the checkpoint, the second when the run loop finishes (before any
    // report assembly).
    let mut marks = [0u64; 2];
    let mut i = 0;
    let report = sim
        .run_probed(SimTime::from_secs(2), SimTime::from_secs(6), &mut || {
            marks[i.min(1)] = allocation_count();
            i += 1;
        })
        .unwrap();
    assert_eq!(i, 2, "probe fires at checkpoint and at loop end");
    let delta = marks[1] - marks[0];
    assert_eq!(
        delta, 0,
        "sim steady state allocated {delta} times over 4 simulated seconds"
    );
    // Sanity: the bracketed window processed real work.
    assert!(report.events_processed > 2_000);
    assert!(report.total_throughput_kbps() > 200.0);
}

fn scatternet_steady_state_is_allocation_free() {
    // Two chained Fig. 4 piconets with one bridged GS flow, without the
    // (deliberately overloading) BE load: after warm-up the shared wheel,
    // both piconet worlds, the relay outboxes, the origin FIFO and the
    // chain statistics must all recycle — zero allocator traffic even
    // while packets cross the bridge every cycle.
    let scenario = ScatternetScenario::build(ScatternetScenarioParams {
        piconets: 2,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: false,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology: Topology::Chain,
    });
    let sim = scenario.simulator(PollerKind::PfpGs).unwrap();
    let mut marks = [0u64; 2];
    let mut i = 0;
    let report = sim
        .run_probed(SimTime::from_secs(2), SimTime::from_secs(6), &mut || {
            marks[i.min(1)] = allocation_count();
            i += 1;
        })
        .unwrap();
    assert_eq!(i, 2, "probe fires at checkpoint and at loop end");
    let delta = marks[1] - marks[0];
    assert_eq!(
        delta, 0,
        "scatternet steady state allocated {delta} times over 4 simulated seconds"
    );
    // Sanity: the bracketed window processed real cross-piconet work.
    assert!(report.events_processed > 4_000);
    assert!(report.chains[0].delivered_packets > 100);
}

fn mixed_acl_sco_steady_state_is_allocation_free() {
    // An SCO link alongside a CBR ACL flow exercises the reservation cache
    // and the SCO handlers in the bracketed window.
    use btgs_baseband::ScoLink;
    use btgs_piconet::{PiconetConfig, ScoBinding};

    let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_flow(FlowSpec::new(
            FlowId(1),
            AmAddr::new(1).unwrap(),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ))
        .with_sco(ScoBinding {
            slave: AmAddr::new(2).unwrap(),
            link: ScoLink::new(PacketType::Hv3, 0).unwrap(),
            voice_flow: Some(FlowId(9)),
        })
        .with_warmup(SimDuration::from_millis(500));
    let mut sim = PiconetSim::new(
        config,
        Box::new(btgs_piconet::RoundRobinForTest::default()),
        Box::new(IdealChannel),
    )
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(1),
        SimDuration::from_millis(20),
        160,
        160,
        DetRng::seed_from_u64(1),
    )))
    .unwrap();
    sim.add_source(Box::new(CbrSource::new(
        FlowId(9),
        SimDuration::from_millis(3750) / 1000,
        30,
        30,
        DetRng::seed_from_u64(2),
    )))
    .unwrap();
    let mut marks = [0u64; 2];
    let mut i = 0;
    let report = sim
        .run_probed(SimTime::from_secs(2), SimTime::from_secs(5), &mut || {
            marks[i.min(1)] = allocation_count();
            i += 1;
        })
        .unwrap();
    let delta = marks[1] - marks[0];
    assert_eq!(delta, 0, "ACL+SCO steady state allocated {delta} times");
    assert!(report.events_processed > 1_000);
}

fn observed_scatternet_steady_state_is_allocation_free() {
    // The same chained scenario as above, but through the observed engine
    // with the trace ring, the telemetry registry and per-island event
    // meters all switched ON (`fine_events` records one instant per
    // island event). Everything is pre-sized — the rings at sink
    // creation, the histograms and counters as fixed arrays, the meter
    // state inline — so even fully instrumented the steady state must
    // not touch the allocator. This is the gate that keeps the
    // observability seam honest: "compiled in and enabled" may cost
    // cycles, never heap traffic.
    use btgs_piconet::{EventMeter, ObsConfig};

    /// A clock-free meter: tallies `begin`/`end` pairs per tag. (Wall
    /// meters live in `btgs-obs`; here only the call protocol and its
    /// allocation behaviour are under test.)
    #[derive(Default)]
    struct TallyMeter {
        counts: [u64; 8],
        open: bool,
    }
    impl EventMeter for TallyMeter {
        fn begin(&mut self) {
            self.open = true;
        }
        fn end(&mut self, tag: u8) {
            assert!(self.open, "end without begin");
            self.open = false;
            self.counts[(tag as usize).min(7)] += 1;
        }
        fn as_any(&self) -> &dyn core::any::Any {
            self
        }
    }

    let scenario = ScatternetScenario::build(ScatternetScenarioParams {
        piconets: 2,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: false,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology: Topology::Chain,
    });
    let sim = scenario.simulator(PollerKind::PfpGs).unwrap();
    let meters: Vec<Box<dyn EventMeter>> =
        vec![Box::<TallyMeter>::default(), Box::<TallyMeter>::default()];
    let cfg = ObsConfig {
        ring_capacity: 1 << 16,
        fine_events: true,
    };
    let mut marks = [0u64; 2];
    let mut i = 0;
    let run = sim
        .run_observed_probed(
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            &mut || {
                marks[i.min(1)] = allocation_count();
                i += 1;
            },
            cfg,
            meters,
        )
        .unwrap();
    assert_eq!(i, 2, "probe fires at checkpoint and at loop end");
    let delta = marks[1] - marks[0];
    assert_eq!(
        delta, 0,
        "observed scatternet steady state allocated {delta} times over 4 simulated seconds"
    );
    // Sanity: the instrumentation actually observed the window.
    assert!(run.report.events_processed > 4_000);
    assert!(run.telemetry.events_processed > 4_000);
    assert!(!run.trace.records.is_empty(), "trace ring captured records");
    let metered: u64 = run
        .meters
        .iter()
        .map(|m| {
            m.as_any()
                .downcast_ref::<TallyMeter>()
                .expect("meters come back as handed in")
                .counts
                .iter()
                .sum::<u64>()
        })
        .sum();
    assert_eq!(
        metered, run.telemetry.events_processed,
        "every island event gets a begin/end pair"
    );
}

fn parallel_scatternet_steady_state_is_allocation_free() {
    // The same bracketed window as `scatternet_steady_state_is_allocation_
    // free`, but through the phased engine with two worker threads. The
    // workers are spawned once at run start (before the checkpoint), the
    // staging scratch and every island buffer are pre-sized, and workers
    // only ever lock-and-run islands between barriers — so the steady
    // state must stay allocation-free even though the counter is
    // process-global and sees every thread.
    let scenario = ScatternetScenario::build(ScatternetScenarioParams {
        piconets: 2,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: false,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology: Topology::Chain,
    });
    let sim = scenario
        .simulator(PollerKind::PfpGs)
        .unwrap()
        .with_threads(2);
    let mut marks = [0u64; 2];
    let mut i = 0;
    let report = sim
        .run_probed(SimTime::from_secs(2), SimTime::from_secs(6), &mut || {
            marks[i.min(1)] = allocation_count();
            i += 1;
        })
        .unwrap();
    assert_eq!(i, 2, "probe fires at checkpoint and at loop end");
    let delta = marks[1] - marks[0];
    assert_eq!(
        delta, 0,
        "parallel scatternet steady state allocated {delta} times over 4 simulated seconds"
    );
    assert!(report.events_processed > 4_000);
    assert!(report.chains[0].delivered_packets > 100);
}

fn mesh_scatternet_steady_state_is_allocation_free() {
    // Mesh scale: 256 random-geometric piconets, every spanning edge
    // covered by a relay chain, run through the adaptive parallel engine.
    // The relay pool, the boundary calendar, the per-island meta table
    // and the staging buffers are all sized up front, so even hundreds of
    // islands exchanging relays every rendezvous cycle must not touch
    // the allocator after warm-up. Degree 2: each piconet then carries at
    // most one inbound and one outbound bridge role, whose presence
    // windows anti-phase within the rendezvous cycle — the same
    // sustainable transit layout as a chain. (At degree 3 two inbound
    // bridge slaves share one half-cycle window and the relay fabric is
    // over-committed by construction — the bench covers that regime; a
    // steady-state gate cannot.)
    let scenario = ScatternetScenario::build(ScatternetScenarioParams {
        piconets: 256,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: false,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology: Topology::Mesh {
            degree: 2,
            seed: 11,
        },
    });
    let sim = scenario
        .simulator(PollerKind::PfpGs)
        .unwrap()
        .with_threads(2);
    let mut marks = [0u64; 2];
    let mut i = 0;
    let report = sim
        .run_probed(SimTime::from_secs(2), SimTime::from_secs(6), &mut || {
            marks[i.min(1)] = allocation_count();
            i += 1;
        })
        .unwrap();
    assert_eq!(i, 2, "probe fires at checkpoint and at loop end");
    let delta = marks[1] - marks[0];
    assert_eq!(
        delta, 0,
        "mesh scatternet steady state allocated {delta} times over 4 simulated seconds"
    );
    assert!(report.events_processed > 100_000);
    assert!(
        report
            .chains
            .iter()
            .map(|c| c.delivered_packets)
            .sum::<u64>()
            > 1_000
    );
}

/// The streaming grid aggregator's memory must be bounded by the number
/// of summary series, **not** the cell count (the ISSUE's acceptance
/// criterion for "millions of cells" sweeps): aggregating 256 cells must
/// allocate exactly as much as aggregating 16 — and, once every poller
/// series exists, exactly nothing.
fn grid_aggregator_memory_is_independent_of_cell_count() {
    use btgs_core::{BeSourceMix, CellSink, GridCell, ScenarioGrid};
    use btgs_grid::OnlineAggregator;

    let grid = ScenarioGrid {
        pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
        piconets: vec![1],
        seeds: vec![1],
        topologies: vec![Topology::Chain],
        delay_requirements: vec![SimDuration::from_millis(40)],
        chain_deadlines: vec![None],
        bidirectional: false,
        bridge_cycle: SimDuration::from_millis(20),
        horizon: SimTime::from_secs(1),
        warmup: SimDuration::from_millis(250),
        include_be: true,
        be_load_scale: vec![1.0],
        be_source_mix: BeSourceMix::Cbr,
        telemetry: false,
    };
    // Two simulated results re-presented under many indices: the
    // aggregator only ever sees (cell coordinates, reports), so this is
    // indistinguishable from a genuinely large grid with identical
    // outcomes — and isolates *aggregation* allocation from simulation.
    let results: Vec<_> = grid.cells().iter().map(GridCell::run).collect();

    let aggregate = |cells: usize| -> u64 {
        let mut agg = OnlineAggregator::for_grid(&grid);
        let before = allocation_count();
        for i in 0..cells {
            agg.accept(i, &results[i % results.len()]);
        }
        let delta = allocation_count() - before;
        assert_eq!(agg.cells() as usize, cells);
        black_box(agg);
        delta
    };

    let small = aggregate(16);
    let large = aggregate(256);
    assert_eq!(
        small, large,
        "aggregating 256 cells must allocate exactly as much as 16 \
         (got {small} vs {large} allocations)"
    );
    // Stronger: with the series pre-registered, streaming allocates
    // nothing at all.
    assert_eq!(
        small, 0,
        "pre-registered aggregator must stream without allocating"
    );
}

fn main() {
    poller_decisions_are_allocation_free();
    println!("ok - poller decisions are allocation-free");
    des_event_loop_is_allocation_free();
    println!("ok - DES event loop is allocation-free");
    sim_steady_state_is_allocation_free();
    println!("ok - simulator steady state is allocation-free");
    mixed_acl_sco_steady_state_is_allocation_free();
    println!("ok - ACL+SCO steady state is allocation-free");
    scatternet_steady_state_is_allocation_free();
    println!("ok - scatternet steady state is allocation-free");
    observed_scatternet_steady_state_is_allocation_free();
    println!("ok - observed (traced+metered) scatternet steady state is allocation-free");
    parallel_scatternet_steady_state_is_allocation_free();
    println!("ok - parallel scatternet steady state is allocation-free");
    mesh_scatternet_steady_state_is_allocation_free();
    println!("ok - 256-piconet mesh steady state is allocation-free");
    grid_aggregator_memory_is_independent_of_cell_count();
    println!("ok - grid aggregator memory is independent of cell count");
}
