//! Micro-benchmark: raw event throughput of the DES engine.

use btgs_bench::microbench::Criterion;
use btgs_bench::{criterion_group, criterion_main};
use btgs_des::{EventQueue, SimDuration, SimTime, Simulator};
use std::hint::black_box;

fn engine_event_throughput(c: &mut Criterion) {
    c.bench_function("des/self_rescheduling_event_100k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(0u64);
            sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
            sim.run_until(SimTime::from_millis(100_000), |sched, count, ()| {
                *count += 1;
                sched.schedule_in(SimDuration::from_millis(1), ());
            });
            black_box(*sim.state())
        })
    });

    c.bench_function("des/queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times to exercise heap reordering.
                q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some(s) = q.pop() {
                sum = sum.wrapping_add(s.event);
            }
            black_box(sum)
        })
    });

    c.bench_function("des/queue_cancel_heavy", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let keys: Vec<_> = (0..10_000u64)
                .map(|i| q.push(SimTime::from_nanos(i), i))
                .collect();
            for k in keys.iter().step_by(2) {
                q.cancel(*k);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

criterion_group!(benches, engine_event_throughput);
criterion_main!(benches);
