//! Micro-benchmark: raw event throughput of the DES engine.
//!
//! Each wheel benchmark has a `*_heap` twin running the identical workload
//! on the [`HeapEventQueue`] reference backend, measured in the same
//! process — the in-run ratio is immune to machine noise between sessions.

use btgs_bench::microbench::{Criterion, Throughput};
use btgs_bench::{criterion_group, criterion_main};
use btgs_des::{EventQueue, HeapEventQueue, PendingEvents, SimDuration, SimTime, Simulator};
use std::hint::black_box;

/// Events fired by the self-rescheduling loop (t = 0..=100_000 ms).
const SELF_RESCHED_EVENTS: u64 = 100_001;

fn self_resched<Q: PendingEvents<()>>(queue: Q) -> u64 {
    let mut sim = Simulator::with_queue(0u64, queue);
    sim.scheduler_mut().schedule_at(SimTime::ZERO, ());
    sim.run_until(SimTime::from_millis(100_000), |sched, count, ()| {
        *count += 1;
        sched.schedule_in(SimDuration::from_millis(1), ());
    });
    *sim.state()
}

fn push_pop_10k<Q: PendingEvents<u64>>(mut q: Q) -> u64 {
    for i in 0..10_000u64 {
        // Scatter times to exercise bucket/heap reordering.
        q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
    }
    let mut sum = 0u64;
    while let Some(s) = q.pop() {
        sum = sum.wrapping_add(s.event);
    }
    sum
}

fn cancel_heavy<Q: PendingEvents<u64>>(mut q: Q) -> u64 {
    let keys: Vec<_> = (0..10_000u64)
        .map(|i| q.push(SimTime::from_nanos(i), i))
        .collect();
    for k in keys.iter().step_by(2) {
        q.cancel(*k);
    }
    let mut n = 0;
    while q.pop().is_some() {
        n += 1;
    }
    n
}

fn engine_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.throughput(Throughput::Elements(SELF_RESCHED_EVENTS));
    group.bench_function("self_rescheduling_event_100k", |b| {
        b.iter(|| black_box(self_resched(EventQueue::new())))
    });
    group.bench_function("self_rescheduling_event_100k_heap", |b| {
        b.iter(|| black_box(self_resched(HeapEventQueue::new())))
    });
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("queue_push_pop_10k", |b| {
        b.iter(|| black_box(push_pop_10k(EventQueue::new())))
    });
    group.bench_function("queue_push_pop_10k_heap", |b| {
        b.iter(|| black_box(push_pop_10k(HeapEventQueue::new())))
    });
    group.bench_function("queue_cancel_heavy", |b| {
        b.iter(|| black_box(cancel_heavy(EventQueue::new())))
    });
    group.bench_function("queue_cancel_heavy_heap", |b| {
        b.iter(|| black_box(cancel_heavy(HeapEventQueue::new())))
    });
    group.finish();
}

criterion_group!(benches, engine_event_throughput);
criterion_main!(benches);
