//! Micro-benchmark: cost of the Fig. 3 admission routine.

use btgs_baseband::{AmAddr, Direction};
use btgs_bench::microbench::Criterion;
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{admit, paper_tspec, AdmissionConfig, GsRequest};
use btgs_traffic::FlowId;
use std::hint::black_box;

fn requests(pairs: u8) -> Vec<GsRequest> {
    let tspec = paper_tspec();
    let mut out = Vec::new();
    for n in 1..=pairs {
        let s = AmAddr::new(n).expect("<=7");
        out.push(GsRequest::new(
            FlowId(2 * n as u32 - 1),
            s,
            Direction::MasterToSlave,
            tspec,
            8_800.0,
        ));
        out.push(GsRequest::new(
            FlowId(2 * n as u32),
            s,
            Direction::SlaveToMaster,
            tspec,
            8_800.0,
        ));
    }
    out
}

fn admission_cost(c: &mut Criterion) {
    let cfg = AdmissionConfig::paper();
    // 2 and 4 pairs are admissible; 7 pairs exceed the schedulable
    // utilisation, so that case measures the full (failing) Audsley search.
    for pairs in [2u8, 4] {
        let reqs = requests(pairs);
        c.bench_function(&format!("admission/{pairs}_bidirectional_pairs"), |b| {
            b.iter(|| black_box(admit(black_box(&reqs), &cfg)).is_ok())
        });
        assert!(admit(&reqs, &cfg).is_ok());
    }
    let reqs = requests(7);
    assert!(admit(&reqs, &cfg).is_err());
    c.bench_function("admission/7_pairs_rejected", |b| {
        b.iter(|| black_box(admit(black_box(&reqs), &cfg)).is_err())
    });
}

criterion_group!(benches, admission_cost);
criterion_main!(benches);
