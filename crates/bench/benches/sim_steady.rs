//! Macro-benchmark: simulated seconds per wall second for the
//! full paper scenario.

use btgs_bench::microbench::Criterion;
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs_des::{SimDuration, SimTime};
use std::hint::black_box;

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_steady");
    group.sample_size(10);
    group.bench_function("paper_scenario_5s_simulated", |b| {
        b.iter(|| {
            let scenario = PaperScenario::build(PaperScenarioParams {
                delay_requirement: SimDuration::from_millis(40),
                seed: 1,
                warmup: SimDuration::from_millis(500),
                include_be: true,
            });
            let report = scenario
                .run(PollerKind::PfpGs, SimTime::from_secs(5))
                .expect("scenario runs");
            black_box(report.total_throughput_kbps())
        })
    });
    group.bench_function("gs_only_5s_simulated", |b| {
        b.iter(|| {
            let scenario = PaperScenario::build(PaperScenarioParams {
                delay_requirement: SimDuration::from_millis(40),
                seed: 1,
                warmup: SimDuration::from_millis(500),
                include_be: false,
            });
            let report = scenario
                .run(PollerKind::PfpGs, SimTime::from_secs(5))
                .expect("scenario runs");
            black_box(report.total_throughput_kbps())
        })
    });
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
