//! Macro-benchmark: simulated seconds per wall second for the
//! full paper scenario.
//!
//! Throughput is declared in engine events (measured from a probe run), so
//! the JSON output records events/sec alongside ns/op. The `*_heap`
//! variants run the identical scenario on the binary-heap reference queue
//! in the same process, giving a noise-immune wheel-vs-heap ratio.

use btgs_bench::microbench::{Criterion, Throughput};
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::EventQueueBackend;
use std::hint::black_box;

fn params(include_be: bool) -> PaperScenarioParams {
    PaperScenarioParams {
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be,
        ..Default::default()
    }
}

fn run(include_be: bool, backend: EventQueueBackend) -> btgs_piconet::RunReport {
    let scenario = PaperScenario::build(params(include_be));
    scenario
        .run_with_backend(PollerKind::PfpGs, SimTime::from_secs(5), backend)
        .expect("scenario runs")
}

fn sim_throughput(c: &mut Criterion) {
    // One probe run per scenario supplies the event count for the
    // events/sec figure (runs are deterministic, so it is exact).
    let full_events = run(true, EventQueueBackend::TimingWheel).events_processed;
    let gs_events = run(false, EventQueueBackend::TimingWheel).events_processed;

    let mut group = c.benchmark_group("sim_steady");
    group.sample_size(10);
    group.throughput(Throughput::Elements(full_events));
    group.bench_function("paper_scenario_5s_simulated", |b| {
        b.iter(|| black_box(run(true, EventQueueBackend::TimingWheel).total_throughput_kbps()))
    });
    group.bench_function("paper_scenario_5s_simulated_heap", |b| {
        b.iter(|| black_box(run(true, EventQueueBackend::BinaryHeap).total_throughput_kbps()))
    });
    group.throughput(Throughput::Elements(gs_events));
    group.bench_function("gs_only_5s_simulated", |b| {
        b.iter(|| black_box(run(false, EventQueueBackend::TimingWheel).total_throughput_kbps()))
    });
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
