//! Macro-benchmark: simulated seconds per wall second for the chained
//! scatternet scenario (2, 3, 8 and 16 Fig. 4 piconets plus an 8-piconet
//! ring, one bridged GS flow per chain) and random-geometric meshes of 64
//! and 256 piconets (degree-3, every spanning edge covered by a relay
//! chain).
//!
//! Throughput is declared in engine events (measured from a probe run),
//! so the JSON output records events/sec alongside ns/op — the same
//! convention as `sim_steady`. The single-piconet `sim_steady` numbers
//! are the baseline: a scatternet run costs roughly the sum of its
//! piconets plus the (small) relay fabric.
//!
//! The `parallel4` twins run the *same* scenarios through the island
//! engine with four worker threads ([`ScatternetSim::with_threads`]);
//! reports are byte-identical to the serial runs (asserted by
//! `tests/parallel_equivalence.rs`), so a twin's speedup is pure engine
//! parallelism, not a different workload.
//!
//! Each probe run also prints the engine's observability counters
//! (`phases_run`, `barrier_rounds`, `islands_claimed`, `relays_staged`)
//! and annotates them into the JSON trajectory record, so the effect of
//! phase batching and adaptive widening on the round structure is
//! tracked across PRs alongside the wall clock.
//!
//! The `sanitized` twin runs one small scenario through
//! [`ScatternetSim::run_sanitized`] — the causality sanitizer's
//! instrumented monomorphisation. Its cost rides *only* on that twin:
//! every other case runs the uninstrumented engine (the probe seam is a
//! const-generic parameter, compiled out of the default path), so the
//! serial and parallel trajectories above double as the regression gate
//! that attaching the sanitizer costs the production engine nothing.
//!
//! [`ScatternetSim::with_threads`]: btgs_piconet::ScatternetSim::with_threads
//! [`ScatternetSim::run_sanitized`]: btgs_piconet::ScatternetSim::run_sanitized

use btgs_bench::microbench::{Criterion, Throughput};
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{BeSourceMix, PollerKind, ScatternetScenario, ScatternetScenarioParams, Topology};
use btgs_des::{SimDuration, SimTime};
use std::hint::black_box;

fn params(piconets: u16, topology: Topology) -> ScatternetScenarioParams {
    // Mesh cells allocate bridge roles down from S7 into the best-effort
    // slave range, so they run without the Fig. 4 BE pairs.
    let include_be = !matches!(topology, Topology::Mesh { .. });
    ScatternetScenarioParams {
        piconets,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology,
    }
}

fn run(piconets: u16, topology: Topology, threads: usize) -> btgs_piconet::ScatternetReport {
    let scenario = ScatternetScenario::build(params(piconets, topology));
    scenario
        .simulator(PollerKind::PfpGs)
        .expect("scenario builds")
        .with_threads(threads)
        .run(SimTime::from_secs(5))
        .expect("scenario runs")
}

fn scatternet_throughput(c: &mut Criterion) {
    let mesh = Topology::Mesh {
        degree: 3,
        seed: 11,
    };
    let cases: &[(&str, u16, Topology)] = &[
        ("chained2", 2, Topology::Chain),
        ("chained3", 3, Topology::Chain),
        ("chained8", 8, Topology::Chain),
        ("chained16", 16, Topology::Chain),
        ("ring8", 8, Topology::Ring),
        ("mesh64", 64, mesh),
        ("mesh256", 256, mesh),
    ];
    let mut group = c.benchmark_group("scatternet_steady");
    group.sample_size(10);
    for &(name, n, topology) in cases {
        // One probe run per scenario supplies the event count for the
        // events/sec figure (runs are deterministic, so it is exact) and
        // the engine counters for the trajectory record.
        let probe = run(n, topology, 1);
        let events = probe.events_processed;
        println!(
            "{name:<44} {} phases, {} islands claimed, {} relays staged",
            probe.phases_run, probe.islands_claimed, probe.relays_staged,
        );
        group.throughput(Throughput::Elements(events));
        group.bench_function(&format!("{name}_5s_simulated"), |b| {
            b.iter(|| black_box(run(n, topology, 1).total_throughput_kbps()))
        });
        group.annotate(
            &format!("{name}_5s_simulated"),
            &[
                ("phases_run", probe.phases_run),
                ("islands_claimed", probe.islands_claimed),
                ("relays_staged", probe.relays_staged),
            ],
        );
        // The parallel twin simulates the identical scenario; only the
        // wall clock (and the barrier-round count) may differ.
        let par_probe = run(n, topology, 4);
        println!(
            "{name:<44} {} barrier rounds at 4 threads",
            par_probe.barrier_rounds,
        );
        group.throughput(Throughput::Elements(events));
        group.bench_function(&format!("{name}_5s_parallel4"), |b| {
            b.iter(|| black_box(run(n, topology, 4).total_throughput_kbps()))
        });
        group.annotate(
            &format!("{name}_5s_parallel4"),
            &[
                ("phases_run", par_probe.phases_run),
                ("barrier_rounds", par_probe.barrier_rounds),
                ("islands_claimed", par_probe.islands_claimed),
                ("relays_staged", par_probe.relays_staged),
            ],
        );
    }
    // The sanitized twin: the chained-3 scenario under the causality
    // sanitizer. Tracks the instrumentation's own overhead; the default
    // cases above stay on the compiled-out path.
    let san_probe = run(3, Topology::Chain, 1);
    group.throughput(Throughput::Elements(san_probe.events_processed));
    group.bench_function("chained3_5s_sanitized", |b| {
        b.iter(|| {
            let sanitized = ScatternetScenario::build(params(3, Topology::Chain))
                .simulator(PollerKind::PfpGs)
                .expect("scenario builds")
                .run_sanitized(SimTime::from_secs(5))
                .expect("scenario runs");
            assert!(sanitized.sanitizer.clean(), "clean engine tripped");
            black_box(sanitized.sanitizer.events_checked)
        })
    });
    group.finish();
}

criterion_group!(benches, scatternet_throughput);
criterion_main!(benches);
