//! Macro-benchmark: simulated seconds per wall second for the chained
//! scatternet scenario (2 and 3 Fig. 4 piconets, one bridged GS flow).
//!
//! Throughput is declared in shared-engine events (measured from a probe
//! run), so the JSON output records events/sec alongside ns/op — the same
//! convention as `sim_steady`. The single-piconet `sim_steady` numbers are
//! the baseline: a scatternet run costs roughly the sum of its piconets
//! plus the (small) relay fabric.

use btgs_bench::microbench::{Criterion, Throughput};
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{BeSourceMix, PollerKind, ScatternetScenario, ScatternetScenarioParams};
use btgs_des::{SimDuration, SimTime};
use std::hint::black_box;

fn params(piconets: u8) -> ScatternetScenarioParams {
    ScatternetScenarioParams {
        piconets,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: true,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
    }
}

fn run(piconets: u8) -> btgs_piconet::ScatternetReport {
    let scenario = ScatternetScenario::build(params(piconets));
    scenario
        .run(PollerKind::PfpGs, SimTime::from_secs(5))
        .expect("scenario runs")
}

fn scatternet_throughput(c: &mut Criterion) {
    // One probe run per scenario supplies the event count for the
    // events/sec figure (runs are deterministic, so it is exact).
    let events2 = run(2).events_processed;
    let events3 = run(3).events_processed;

    let mut group = c.benchmark_group("scatternet_steady");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events2));
    group.bench_function("chained2_5s_simulated", |b| {
        b.iter(|| black_box(run(2).total_throughput_kbps()))
    });
    group.throughput(Throughput::Elements(events3));
    group.bench_function("chained3_5s_simulated", |b| {
        b.iter(|| black_box(run(3).total_throughput_kbps()))
    });
    group.finish();
}

criterion_group!(benches, scatternet_throughput);
criterion_main!(benches);
