//! Macro-benchmark: simulated seconds per wall second for the chained
//! scatternet scenario (2, 3, 8 and 16 Fig. 4 piconets plus an 8-piconet
//! ring, one bridged GS flow per chain).
//!
//! Throughput is declared in engine events (measured from a probe run),
//! so the JSON output records events/sec alongside ns/op — the same
//! convention as `sim_steady`. The single-piconet `sim_steady` numbers
//! are the baseline: a scatternet run costs roughly the sum of its
//! piconets plus the (small) relay fabric.
//!
//! The `parallel4` twins run the *same* scenarios through the island
//! engine with four worker threads ([`ScatternetSim::with_threads`]);
//! reports are byte-identical to the serial runs (asserted by
//! `tests/parallel_equivalence.rs`), so a twin's speedup is pure engine
//! parallelism, not a different workload.
//!
//! [`ScatternetSim::with_threads`]: btgs_piconet::ScatternetSim::with_threads

use btgs_bench::microbench::{Criterion, Throughput};
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{BeSourceMix, PollerKind, ScatternetScenario, ScatternetScenarioParams, Topology};
use btgs_des::{SimDuration, SimTime};
use std::hint::black_box;

fn params(piconets: u8, topology: Topology) -> ScatternetScenarioParams {
    ScatternetScenarioParams {
        piconets,
        delay_requirement: SimDuration::from_millis(40),
        seed: 1,
        warmup: SimDuration::from_millis(500),
        include_be: true,
        bridge_cycle: SimDuration::from_millis(20),
        chain_deadline: None,
        bidirectional: false,
        be_load_scale: 1.0,
        be_source_mix: BeSourceMix::Cbr,
        topology,
    }
}

fn run(piconets: u8, topology: Topology, threads: usize) -> btgs_piconet::ScatternetReport {
    let scenario = ScatternetScenario::build(params(piconets, topology));
    scenario
        .simulator(PollerKind::PfpGs)
        .expect("scenario builds")
        .with_threads(threads)
        .run(SimTime::from_secs(5))
        .expect("scenario runs")
}

fn scatternet_throughput(c: &mut Criterion) {
    let cases: &[(&str, u8, Topology)] = &[
        ("chained2", 2, Topology::Chain),
        ("chained3", 3, Topology::Chain),
        ("chained8", 8, Topology::Chain),
        ("chained16", 16, Topology::Chain),
        ("ring8", 8, Topology::Ring),
    ];
    let mut group = c.benchmark_group("scatternet_steady");
    group.sample_size(10);
    for &(name, n, topology) in cases {
        // One probe run per scenario supplies the event count for the
        // events/sec figure (runs are deterministic, so it is exact).
        let events = run(n, topology, 1).events_processed;
        group.throughput(Throughput::Elements(events));
        group.bench_function(&format!("{name}_5s_simulated"), |b| {
            b.iter(|| black_box(run(n, topology, 1).total_throughput_kbps()))
        });
        // The parallel twin simulates the identical scenario; only the
        // wall clock may differ.
        group.throughput(Throughput::Elements(events));
        group.bench_function(&format!("{name}_5s_parallel4"), |b| {
            b.iter(|| black_box(run(n, topology, 4).total_throughput_kbps()))
        });
    }
    group.finish();
}

criterion_group!(benches, scatternet_throughput);
criterion_main!(benches);
