//! Micro-benchmark: per-decision cost of each poller, plus the
//! [`FlowTable`] fast paths against the linear-scan/allocating baselines
//! they replaced.
//!
//! The `view_lookup/*` pairs are the acceptance gauge of the dense-arena
//! refactor: `flow_table` variants must run at least ~2x faster than their
//! `linear_scan` counterparts (in practice the gap is far larger).

use btgs_baseband::{AmAddr, Direction, LogicalChannel};
use btgs_bench::microbench::Criterion;
use btgs_bench::{criterion_group, criterion_main};
use btgs_core::{admit, paper_tspec, AdmissionConfig, GsPoller, GsRequest};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::{FlowQueue, FlowSpec, FlowTable, MasterView, Poller};
use btgs_pollers::{FepPoller, PfpBePoller, RoundRobinPoller};
use btgs_traffic::FlowId;
use std::hint::black_box;

/// The paper's Fig. 4 layout: 4 GS flows on S1..S3 plus a BE pair per slave
/// S4..S7 — 12 flows, the densest configuration a 7-slave piconet sees.
fn fig4_flows() -> Vec<FlowSpec> {
    let s = |n| AmAddr::new(n).unwrap();
    let mut out = vec![
        FlowSpec::new(
            FlowId(1),
            s(1),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ),
        FlowSpec::new(
            FlowId(2),
            s(2),
            Direction::MasterToSlave,
            LogicalChannel::GuaranteedService,
        ),
        FlowSpec::new(
            FlowId(3),
            s(2),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ),
        FlowSpec::new(
            FlowId(4),
            s(3),
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ),
    ];
    for k in 0..4u32 {
        let sl = s(4 + k as u8);
        out.push(FlowSpec::new(
            FlowId(5 + 2 * k),
            sl,
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        ));
        out.push(FlowSpec::new(
            FlowId(6 + 2 * k),
            sl,
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ));
    }
    out
}

fn bench_poller(c: &mut Criterion, name: &str, poller: &mut dyn Poller) {
    let table = FlowTable::new(fig4_flows()).unwrap();
    let queues: Vec<Option<FlowQueue>> = table
        .specs()
        .iter()
        .map(|f| f.direction.is_downlink().then(FlowQueue::new))
        .collect();
    c.bench_function(&format!("poller_decide/{name}"), |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1_250_000;
            let now = SimTime::from_nanos(t);
            let view = MasterView::new(now, &table, &queues);
            black_box(poller.decide(now, &view))
        })
    });
}

/// The hot lookups of the exchange machinery, old shape vs. new shape.
fn view_lookups(c: &mut Criterion) {
    let flows = fig4_flows();
    let table = FlowTable::new(flows.clone()).unwrap();
    let s = |n| AmAddr::new(n).unwrap();

    // (slave, direction, channel) -> flow: every exchange start does two of
    // these. Old: linear scan over all specs. New: O(1) dense-array read.
    // One iteration resolves all 7 slaves so loop overhead cannot mask the
    // per-lookup cost.
    c.bench_function("view_lookup/flow_at/linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for n in 1..=7u8 {
                let slave = s(black_box(n));
                hits += flows
                    .iter()
                    .position(|f| {
                        f.slave == slave
                            && f.direction == Direction::SlaveToMaster
                            && f.channel == LogicalChannel::BestEffort
                    })
                    .is_some() as usize;
            }
            black_box(hits)
        })
    });
    c.bench_function("view_lookup/flow_at/flow_table", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for n in 1..=7u8 {
                hits += table
                    .at(
                        s(black_box(n)),
                        Direction::SlaveToMaster,
                        LogicalChannel::BestEffort,
                    )
                    .is_some() as usize;
            }
            black_box(hits)
        })
    });

    // Per-channel slave list: every BE poller decision needs one. Old:
    // rebuild + sort a Vec per decision. New: borrow the precomputed slice.
    c.bench_function("view_lookup/be_slaves/alloc_and_sort", |b| {
        b.iter(|| {
            let mut out: Vec<AmAddr> = Vec::new();
            for f in &flows {
                if f.channel == LogicalChannel::BestEffort && !out.contains(&f.slave) {
                    out.push(f.slave);
                }
            }
            out.sort();
            black_box(out)
        })
    });
    c.bench_function("view_lookup/be_slaves/flow_table", |b| {
        b.iter(|| black_box(table.slaves_on(LogicalChannel::BestEffort)))
    });

    // Flow id -> spec: poller feedback paths. Old: find(). New: direct map.
    // One iteration resolves all 12 ids.
    c.bench_function("view_lookup/flow_by_id/linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in 1..=12u32 {
                let id = FlowId(black_box(k));
                hits += flows.iter().any(|f| f.id == id) as usize;
            }
            black_box(hits)
        })
    });
    c.bench_function("view_lookup/flow_by_id/flow_table", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for k in 1..=12u32 {
                hits += table.idx_of(FlowId(black_box(k))).is_some() as usize;
            }
            black_box(hits)
        })
    });
}

fn poller_decisions(c: &mut Criterion) {
    bench_poller(c, "round_robin", &mut RoundRobinPoller::new());
    bench_poller(c, "fep", &mut FepPoller::new(SimDuration::from_millis(30)));
    bench_poller(
        c,
        "pfp_be",
        &mut PfpBePoller::new(SimDuration::from_millis(25)),
    );

    // The GS poller with the paper's four-flow schedule.
    let tspec = paper_tspec();
    let s = |n| AmAddr::new(n).unwrap();
    let reqs = vec![
        GsRequest::new(FlowId(1), s(1), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(2), s(2), Direction::MasterToSlave, tspec, 8800.0),
        GsRequest::new(FlowId(3), s(2), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(4), s(3), Direction::SlaveToMaster, tspec, 8800.0),
    ];
    let outcome = admit(&reqs, &AdmissionConfig::paper()).unwrap();
    let mut gs = GsPoller::variable(&outcome, SimTime::ZERO);
    bench_poller(c, "gs_variable", &mut gs);
}

criterion_group!(benches, poller_decisions, view_lookups);
criterion_main!(benches);
