//! Criterion micro-benchmark: per-decision cost of each poller.

use btgs_baseband::{AmAddr, Direction, LogicalChannel};
use btgs_core::{admit, paper_tspec, AdmissionConfig, GsPoller, GsRequest};
use btgs_des::{SimDuration, SimTime};
use btgs_piconet::{FlowQueue, FlowSpec, MasterView, Poller};
use btgs_pollers::{FepPoller, PfpBePoller, RoundRobinPoller};
use btgs_traffic::FlowId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn flows() -> Vec<FlowSpec> {
    let mut out = Vec::new();
    for n in 1..=7u8 {
        out.push(FlowSpec::new(
            FlowId(n as u32),
            AmAddr::new(n).unwrap(),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ));
    }
    out
}

fn bench_poller(c: &mut Criterion, name: &str, poller: &mut dyn Poller) {
    let flows = flows();
    let queues: Vec<Option<FlowQueue>> = flows.iter().map(|_| None).collect();
    c.bench_function(&format!("poller_decide/{name}"), |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1_250_000;
            let now = SimTime::from_nanos(t);
            let view = MasterView::new(now, &flows, &queues);
            black_box(poller.decide(now, &view))
        })
    });
}

fn poller_decisions(c: &mut Criterion) {
    bench_poller(c, "round_robin", &mut RoundRobinPoller::new());
    bench_poller(c, "fep", &mut FepPoller::new(SimDuration::from_millis(30)));
    bench_poller(
        c,
        "pfp_be",
        &mut PfpBePoller::new(SimDuration::from_millis(25)),
    );

    // The GS poller with the paper's four-flow schedule.
    let tspec = paper_tspec();
    let s = |n| AmAddr::new(n).unwrap();
    let reqs = vec![
        GsRequest::new(FlowId(11), s(1), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(12), s(2), Direction::MasterToSlave, tspec, 8800.0),
        GsRequest::new(FlowId(13), s(2), Direction::SlaveToMaster, tspec, 8800.0),
        GsRequest::new(FlowId(14), s(3), Direction::SlaveToMaster, tspec, 8800.0),
    ];
    let outcome = admit(&reqs, &AdmissionConfig::paper()).unwrap();
    let mut gs = GsPoller::variable(&outcome, SimTime::ZERO);
    bench_poller(c, "gs_variable", &mut gs);
}

criterion_group!(benches, poller_decisions);
criterion_main!(benches);
