//! Streaming sinks: bounded-memory online aggregation and JSONL spill.
//!
//! Both implement [`CellSink`] and are completion-order invariant, so
//! they sit equally behind the in-process
//! [`ExperimentRunner`](btgs_core::ExperimentRunner) and the
//! multi-process [`ShardedGridRunner`](crate::ShardedGridRunner).

use crate::wire::{frame_to_json, grid_digest};
use btgs_core::{CellResult, CellSink, PollerKind, ScenarioGrid};
use btgs_metrics::{fmt_f64, DelaySummary, Histogram, Table};
use btgs_piconet::TelemetryReport;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Upper edge of the aggregator's GS delay histogram, in milliseconds.
const DELAY_HIST_MS: f64 = 100.0;
/// Bin count of the aggregator's GS delay histogram.
const DELAY_HIST_BINS: usize = 50;

/// Per-poller accumulators. Everything is an exact integer (or a
/// fixed-size histogram), so accumulation is associative + commutative:
/// any completion order, and any shard-wise [`OnlineAggregator::merge`]
/// tree, produces identical state.
#[derive(Clone, Debug)]
struct SeriesAccum {
    cells: u64,
    gs_bytes: u128,
    be_bytes: u128,
    window_ns: u128,
    gs_delay: DelaySummary,
    violations: u64,
    delay_hist: Histogram,
}

impl SeriesAccum {
    fn new() -> SeriesAccum {
        SeriesAccum {
            cells: 0,
            gs_bytes: 0,
            be_bytes: 0,
            window_ns: 0,
            gs_delay: DelaySummary::new(),
            violations: 0,
            delay_hist: Histogram::new(0.0, DELAY_HIST_MS, DELAY_HIST_BINS)
                .expect("constant histogram shape is valid"),
        }
    }
}

/// An online, bounded-memory grid aggregator.
///
/// Accumulates one summary series per poller — counts, exact byte and
/// delay-sum integers, a [`DelaySummary`] and a fixed-bin delay
/// [`Histogram`] — and **nothing per cell**: after each poller has been
/// seen once, [`CellSink::accept`] allocates zero bytes, so peak memory
/// is `O(pollers)` whether the grid has 16 cells or 16 million (enforced
/// by the `alloc_counter` test in `btgs-bench`).
#[derive(Clone, Debug, Default)]
pub struct OnlineAggregator {
    series: Vec<(PollerKind, SeriesAccum)>,
    cells: u64,
    telemetry: TelemetryReport,
}

impl OnlineAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> OnlineAggregator {
        OnlineAggregator::default()
    }

    /// Pre-registers the pollers of a grid so that not even the
    /// first-sight series insertions allocate during streaming.
    pub fn for_grid(grid: &ScenarioGrid) -> OnlineAggregator {
        let mut agg = OnlineAggregator::new();
        for &kind in &grid.pollers {
            agg.series_mut(kind);
        }
        agg
    }

    /// Total cells aggregated.
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// The engine telemetry pooled over every observed cell (all zeros
    /// when the grid ran without [`ScenarioGrid::telemetry`]). Like the
    /// per-cell reports it is **excluded** from [`OnlineAggregator::digest`]
    /// and the summary table: it describes the engine, not the simulated
    /// system.
    pub fn telemetry(&self) -> &TelemetryReport {
        &self.telemetry
    }

    fn series_mut(&mut self, kind: PollerKind) -> &mut SeriesAccum {
        if let Some(pos) = self.series.iter().position(|(k, _)| *k == kind) {
            return &mut self.series[pos].1;
        }
        self.series.push((kind, SeriesAccum::new()));
        &mut self.series.last_mut().expect("just pushed").1
    }

    /// Merges another aggregator (e.g. a per-shard partial) into this
    /// one. Exact and commutative.
    pub fn merge(&mut self, other: &OnlineAggregator) {
        for (kind, accum) in &other.series {
            let mine = self.series_mut(*kind);
            mine.cells += accum.cells;
            mine.gs_bytes += accum.gs_bytes;
            mine.be_bytes += accum.be_bytes;
            mine.window_ns += accum.window_ns;
            mine.gs_delay.merge(&accum.gs_delay);
            mine.violations += accum.violations;
            mine.delay_hist
                .merge(&accum.delay_hist)
                .expect("aggregator histograms share one shape");
        }
        self.cells += other.cells;
        self.telemetry.merge(&other.telemetry);
    }

    /// A per-poller summary table (rows sorted by poller label, so the
    /// rendering is independent of first-sighting order).
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(vec![
            "poller",
            "cells",
            "GS [kbps]",
            "BE [kbps]",
            "GS delay mean",
            "GS delay max",
            "bound violations",
        ]);
        for (kind, a) in self.sorted_series() {
            // Mean per-cell throughput from the exact byte and window-ns
            // totals: kbps = bytes·8 / total_window_s / 1000, and the
            // per-cell mean folds the cell count away because the window
            // total already sums one window per cell.
            let kbps = |bytes: u128| {
                if a.window_ns == 0 {
                    0.0
                } else {
                    bytes as f64 * 8e6 / a.window_ns as f64
                }
            };
            t.row(vec![
                kind.label(),
                a.cells.to_string(),
                fmt_f64(kbps(a.gs_bytes), 1),
                fmt_f64(kbps(a.be_bytes), 1),
                a.gs_delay
                    .mean()
                    .map_or_else(|| "-".into(), |d| d.to_string()),
                a.gs_delay
                    .max()
                    .map_or_else(|| "-".into(), |d| d.to_string()),
                a.violations.to_string(),
            ]);
        }
        t
    }

    /// The pooled GS delay histogram of one poller (milliseconds,
    /// 0–100 ms, 50 bins), if that poller was seen.
    pub fn delay_histogram(&self, kind: PollerKind) -> Option<&Histogram> {
        self.series
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, a)| &a.delay_hist)
    }

    /// A stable, completion-order-invariant digest of the aggregate
    /// state: integers only, series sorted by label. Two aggregations of
    /// the same cells — whatever the delivery order or merge tree — must
    /// render identically.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for (kind, a) in self.sorted_series() {
            let _ = write!(
                out,
                "{}|cells={}|gsB={}|beB={}|winNs={}|delay={},{},{},{}|viol={}|hist=",
                kind.label(),
                a.cells,
                a.gs_bytes,
                a.be_bytes,
                a.window_ns,
                a.gs_delay.count(),
                a.gs_delay.sum_nanos(),
                a.gs_delay.min().map_or(0, |d| d.as_nanos()),
                a.gs_delay.max().map_or(0, |d| d.as_nanos()),
                a.violations,
            );
            let _ = write!(out, "u{}", a.delay_hist.underflow());
            for &bin in a.delay_hist.bin_counts() {
                let _ = write!(out, ",{bin}");
            }
            let _ = writeln!(out, ",o{}", a.delay_hist.overflow());
        }
        out
    }

    fn sorted_series(&self) -> Vec<&(PollerKind, SeriesAccum)> {
        let mut refs: Vec<_> = self.series.iter().collect();
        refs.sort_by_key(|(k, _)| k.label());
        refs
    }
}

impl CellSink for OnlineAggregator {
    fn accept(&mut self, _index: usize, result: &CellResult) {
        // `gs_violations` runs before borrowing the series so its lazy
        // sample sort (in place, allocation-free) cannot alias.
        let violations = result.gs_violations() as u64;
        let window_ns = u128::from(result.report.window().as_nanos());
        let accum = self.series_mut(result.cell.poller);
        accum.cells += 1;
        accum.window_ns += window_ns;
        accum.violations += violations;
        for f in &result.report.flows {
            let r = result.report.flow(f.id);
            if f.channel.is_gs() {
                accum.gs_bytes += u128::from(r.delivered_bytes);
                accum.gs_delay.observe(&r.delay);
                let hist = &mut accum.delay_hist;
                r.delay.for_each_nanos(|ns| hist.record(ns as f64 / 1e6));
            } else {
                accum.be_bytes += u128::from(r.delivered_bytes);
            }
        }
        if let Some(t) = result
            .scatternet
            .as_ref()
            .and_then(|s| s.telemetry.as_ref())
        {
            // `TelemetryReport` is `Copy` and fixed-size: folding a
            // shard's telemetry allocates nothing per cell.
            self.telemetry.merge(t);
        }
        self.cells += 1;
    }
}

/// A full-fidelity JSONL archive sink: one wire-format frame per cell,
/// one line per frame, in completion order (consumers key on the frame's
/// `index` field, not the line order).
///
/// I/O errors inside the `CellSink` callback are deferred and surfaced by
/// [`JsonlSpillSink::finish`].
pub struct JsonlSpillSink {
    out: BufWriter<File>,
    path: PathBuf,
    grid_digest: u64,
    lines: u64,
    deferred_error: Option<io::Error>,
}

impl JsonlSpillSink {
    /// Creates the spill file (truncating an existing one).
    ///
    /// # Errors
    ///
    /// Propagates file creation errors.
    pub fn create(path: &Path, grid: &ScenarioGrid) -> io::Result<JsonlSpillSink> {
        Ok(JsonlSpillSink {
            out: BufWriter::new(File::create(path)?),
            path: path.to_owned(),
            grid_digest: grid_digest(grid),
            lines: 0,
            deferred_error: None,
        })
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and closes the archive, surfacing any I/O error deferred
    /// from the streaming callbacks; returns the path and line count.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(mut self) -> io::Result<(PathBuf, u64)> {
        if let Some(e) = self.deferred_error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok((self.path, self.lines))
    }
}

impl CellSink for JsonlSpillSink {
    fn accept(&mut self, index: usize, result: &CellResult) {
        if self.deferred_error.is_some() {
            return;
        }
        let line = frame_to_json(self.grid_digest, index, &result.cell, &result.outcome());
        if let Err(e) = writeln!(self.out, "{line}") {
            self.deferred_error = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::frame_from_json;
    use btgs_core::{BeSourceMix, GridCell, PollerKind, ScenarioGrid};
    use btgs_des::{DetRng, SimDuration, SimTime};

    fn grid() -> ScenarioGrid {
        ScenarioGrid {
            pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
            piconets: vec![1],
            seeds: vec![1, 2],
            topologies: vec![btgs_core::Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(20),
            horizon: SimTime::from_secs(1),
            warmup: SimDuration::from_millis(200),
            include_be: true,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        }
    }

    #[test]
    fn aggregator_is_completion_order_invariant() {
        let g = grid();
        let cells = g.cells();
        let results: Vec<_> = cells.iter().map(GridCell::run).collect();

        let mut in_order = OnlineAggregator::new();
        for (i, r) in results.iter().enumerate() {
            in_order.accept(i, r);
        }
        // Several shuffled delivery orders, driven by DetRng.
        let mut rng = DetRng::seed_from_u64(0xA66);
        for _ in 0..5 {
            let mut order: Vec<usize> = (0..results.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.below(i as u64 + 1) as usize);
            }
            let mut shuffled = OnlineAggregator::new();
            for &i in &order {
                shuffled.accept(i, &results[i]);
            }
            assert_eq!(shuffled.digest(), in_order.digest(), "order {order:?}");
            assert_eq!(
                shuffled.summary_table().render(),
                in_order.summary_table().render()
            );
        }
        assert_eq!(in_order.cells(), 4);
    }

    #[test]
    fn shard_wise_merge_equals_single_aggregation() {
        let g = grid();
        let results: Vec<_> = g.cells().iter().map(GridCell::run).collect();
        let mut whole = OnlineAggregator::new();
        let mut left = OnlineAggregator::for_grid(&g);
        let mut right = OnlineAggregator::new();
        for (i, r) in results.iter().enumerate() {
            whole.accept(i, r);
            if i % 2 == 0 {
                left.accept(i, r);
            } else {
                right.accept(i, r);
            }
        }
        // Merge in both directions: identical digests.
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr.digest(), whole.digest());
        assert_eq!(rl.digest(), whole.digest());
        assert_eq!(lr.cells(), whole.cells());
    }

    #[test]
    fn aggregator_tracks_the_grid_report_summary() {
        // The aggregator's pooled delay mean/max and violation counts
        // must equal the in-memory GridReport's (same integer
        // arithmetic); the float throughput columns agree to rendering
        // precision (the aggregator sums exact bytes, the report sums
        // per-flow floats — groupings differ, rows are label-sorted).
        let g = grid();
        let report = btgs_core::ExperimentRunner::with_threads(2).run_grid(&g);
        let mut agg = OnlineAggregator::new();
        for (i, r) in report.cells.iter().enumerate() {
            agg.accept(i, r);
        }
        let rows = |rendered: String| -> Vec<Vec<String>> {
            let mut rows: Vec<Vec<String>> = rendered
                .lines()
                .skip(2) // header + rule
                .map(|l| l.split_whitespace().map(str::to_owned).collect())
                .collect();
            rows.sort();
            rows
        };
        let reference = rows(report.summary_table().render());
        let streamed = rows(agg.summary_table().render());
        assert_eq!(reference.len(), streamed.len());
        for (a, b) in reference.iter().zip(&streamed) {
            assert_eq!(a.len(), b.len(), "{a:?} vs {b:?}");
            for (col, (x, y)) in a.iter().zip(b).enumerate() {
                if let (Ok(fx), Ok(fy)) = (x.parse::<f64>(), y.parse::<f64>()) {
                    assert!((fx - fy).abs() <= 0.1, "col {col}: {x} vs {y}");
                } else {
                    assert_eq!(x, y, "col {col} of {a:?}");
                }
            }
        }
        let hist = agg.delay_histogram(PollerKind::PfpGs).unwrap();
        assert!(hist.count() > 0);
        assert_eq!(hist.overflow(), 0, "all delays fall inside 100 ms");
    }

    #[test]
    fn aggregator_pools_telemetry_without_moving_digests() {
        let mut g = grid();
        g.pollers = vec![PollerKind::PfpGs];
        g.piconets = vec![2];
        g.seeds = vec![1, 2];
        let plain: Vec<_> = g.cells().iter().map(GridCell::run).collect();
        g.telemetry = true;
        let observed: Vec<_> = g.cells().iter().map(GridCell::run).collect();

        let mut agg_plain = OnlineAggregator::new();
        let mut agg_obs = OnlineAggregator::new();
        for (i, (p, o)) in plain.iter().zip(&observed).enumerate() {
            agg_plain.accept(i, p);
            agg_obs.accept(i, o);
        }
        // Telemetry pools across the observed cells and stays out of the
        // digest and summary — the aggregate is byte-identical to the
        // unobserved grid's.
        assert!(agg_obs.telemetry().events_processed > 0);
        assert!(agg_obs.telemetry().phases_run > 0);
        assert_eq!(agg_plain.telemetry().events_processed, 0);
        assert_eq!(agg_plain.digest(), agg_obs.digest());
        assert_eq!(
            agg_plain.summary_table().render(),
            agg_obs.summary_table().render()
        );

        // Shard-wise merge pools telemetry like every other accumulator.
        let mut left = OnlineAggregator::new();
        let mut right = OnlineAggregator::new();
        left.accept(0, &observed[0]);
        right.accept(1, &observed[1]);
        left.merge(&right);
        assert_eq!(
            left.telemetry().events_processed,
            agg_obs.telemetry().events_processed
        );
    }

    #[test]
    fn spill_sink_writes_parseable_frames() {
        let g = grid();
        let dir = std::env::temp_dir().join(format!("btgs-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.jsonl");
        let mut spill = JsonlSpillSink::create(&path, &g).unwrap();
        let cells = g.cells();
        let results: Vec<_> = cells.iter().map(GridCell::run).collect();
        for (i, r) in results.iter().enumerate().rev() {
            spill.accept(i, r);
        }
        let (written, lines) = spill.finish().unwrap();
        assert_eq!(lines, 4);
        let content = std::fs::read_to_string(&written).unwrap();
        let digest = grid_digest(&g);
        let mut seen = [false; 4];
        for line in content.lines() {
            let frame = frame_from_json(line).unwrap();
            assert_eq!(frame.grid_digest, digest);
            assert_eq!(frame.cell, cells[frame.index]);
            seen[frame.index] = true;
        }
        assert!(seen.iter().all(|&s| s));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
