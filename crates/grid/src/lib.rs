//! # btgs-grid — sharded, streaming, resumable experiment-grid execution
//!
//! `btgs-core`'s [`ExperimentRunner`](btgs_core::ExperimentRunner) runs a
//! [`ScenarioGrid`](btgs_core::ScenarioGrid) on one process and, until
//! this crate, held every [`CellResult`](btgs_core::CellResult) in
//! memory. This crate turns grid execution into a pipeline that scales
//! past one heap and one process — the ROADMAP's "shard grids across
//! machines, stream partial reports" item:
//!
//! ```text
//!   ScenarioGrid ──GridPartitioner──▶ GridShards (content-addressed,
//!        │                             pure fn of the grid digest)
//!        │              ┌──────────────┴──────────────┐
//!        │        grid_worker #1  …  grid_worker #N   (processes)
//!        │              │  length-prefixed JSONL frames │
//!        │              ▼                              ▼
//!        │        per-shard checkpoints (kill-and-resume)
//!        │              └──────────────┬──────────────┘
//!        ▼                             ▼
//!   CellSink streaming:   OnlineAggregator (O(pollers) memory)
//!                         JsonlSpillSink   (full-fidelity archive)
//!                         CollectSink      (merged GridReport)
//! ```
//!
//! * [`GridPartitioner`] — splits a grid into [`GridShard`]s; the cell →
//!   shard map is a pure function of the grid digest, so every worker
//!   count (and every machine) sees the same shards.
//! * [`wire`] — the full-fidelity JSON wire format plus length-prefixed
//!   framing with torn-tail detection.
//! * [`OnlineAggregator`] — mergeable per-poller summaries
//!   ([`DelaySummary`](btgs_metrics::DelaySummary) + fixed histograms);
//!   memory bounded by the number of summary series, not cells.
//! * [`JsonlSpillSink`] — archives every cell as one JSONL frame.
//! * [`ShardedGridRunner`] — spawns N `grid_worker` processes, streams
//!   frames into the caller's sink, checkpoints every frame, and merges
//!   a [`GridReport`](btgs_core::GridReport) **byte-identical** to the
//!   in-process runner's at any worker count, including after a worker
//!   is killed mid-shard and the run resumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod partition;
mod runner;
mod sink;
pub mod wire;
mod worker;

pub use partition::{GridPartitioner, GridShard};
pub use runner::{GridError, ShardedGridRunner, ShardedRunOutcome, ShardedStreamStats};
pub use sink::{JsonlSpillSink, OnlineAggregator};
pub use worker::{fault_injection_from_env, run_worker, FaultInjection};
