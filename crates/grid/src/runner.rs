//! The multi-process sharded grid runner.
//!
//! A [`ShardedGridRunner`] executes a [`ScenarioGrid`] by spawning worker
//! *processes* (the `grid_worker` binary of `btgs-bench`), handing each a
//! [`GridShard`] spec on stdin, and streaming length-prefixed cell-result
//! frames back over stdout. Every received frame is
//!
//! 1. appended (verbatim bytes) to the shard's **checkpoint file**,
//! 2. reassembled into a [`CellResult`] and offered to the caller's
//!    [`CellSink`],
//! 3. retained for the merged [`GridReport`].
//!
//! # Determinism & resumability
//!
//! Cells are deterministic functions of their grid coordinates, shards
//! are a pure function of the grid digest ([`GridPartitioner`]), and the
//! merge keys every frame by cell index — so the merged report is
//! **byte-identical** to the in-process
//! [`ExperimentRunner`](btgs_core::ExperimentRunner) at any worker count,
//! after any interleaving, and across kill-and-resume: a rerun replays
//! completed cells from the checkpoints (identical bytes, same digest
//! checks) and only simulates what is missing. Torn checkpoint tails
//! (a parent killed mid-append) are truncated away on resume.

use crate::partition::{GridPartitioner, GridShard};
use crate::wire::{
    frame_from_json, grid_digest, shard_spec_to_json, write_frame, FrameRead, FrameReader,
};
use btgs_core::{CellOutcome, CellResult, CellSink, GridCell, GridReport, ScenarioGrid};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An error from the sharded runner.
#[derive(Debug)]
pub enum GridError {
    /// The grid failed [`ScenarioGrid::validate`].
    InvalidGrid(String),
    /// Filesystem or pipe trouble.
    Io(String),
    /// A worker misbehaved (crash, protocol violation, wrong-grid frame).
    Worker(String),
    /// After all retries some cells are still missing; the checkpoints
    /// retain everything that completed, so a rerun resumes from there.
    Incomplete {
        /// Cells with results.
        done: usize,
        /// Total cells in the grid.
        total: usize,
        /// The last per-shard failure messages.
        failures: Vec<String>,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidGrid(e) => write!(f, "invalid grid: {e}"),
            GridError::Io(e) => write!(f, "I/O error: {e}"),
            GridError::Worker(e) => write!(f, "worker error: {e}"),
            GridError::Incomplete {
                done,
                total,
                failures,
            } => {
                write!(
                    f,
                    "run incomplete: {done}/{total} cells finished (checkpoints retained; \
                     rerun to resume); failures: {}",
                    failures.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

impl From<std::io::Error> for GridError {
    fn from(e: std::io::Error) -> GridError {
        GridError::Io(e.to_string())
    }
}

/// What a completed sharded run reports alongside the merged grid
/// report.
#[derive(Debug)]
pub struct ShardedRunOutcome {
    /// The merged report, in grid order — byte-identical to the
    /// in-process runner's.
    pub report: GridReport,
    /// Cells replayed from checkpoint files (no simulation).
    pub replayed_cells: usize,
    /// Cells executed by workers in this invocation.
    pub executed_cells: usize,
    /// Worker processes spawned.
    pub workers_spawned: usize,
}

/// What a bounded-memory [`ShardedGridRunner::run_streaming`] run
/// reports: counters only, no retained results.
#[derive(Clone, Copy, Debug)]
pub struct ShardedStreamStats {
    /// Total cells in the grid (all delivered to the sink).
    pub cells: usize,
    /// Cells replayed from checkpoint files (no simulation).
    pub replayed_cells: usize,
    /// Cells executed by workers in this invocation.
    pub executed_cells: usize,
    /// Worker processes spawned.
    pub workers_spawned: usize,
}

/// Multi-process sharded execution of scenario grids.
pub struct ShardedGridRunner {
    worker_bin: PathBuf,
    checkpoint_dir: PathBuf,
    workers: usize,
    partitioner: GridPartitioner,
    retries: usize,
}

impl ShardedGridRunner {
    /// Creates a runner driving `workers` parallel processes of
    /// `worker_bin` (the `grid_worker` binary), checkpointing into
    /// `checkpoint_dir` (created if missing).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(worker_bin: &Path, checkpoint_dir: &Path, workers: usize) -> ShardedGridRunner {
        assert!(workers > 0, "at least one worker process is required");
        ShardedGridRunner {
            worker_bin: worker_bin.to_owned(),
            checkpoint_dir: checkpoint_dir.to_owned(),
            workers,
            partitioner: GridPartitioner::new(),
            retries: 1,
        }
    }

    /// Overrides the partitioner (builder style).
    #[must_use]
    pub fn with_partitioner(mut self, p: GridPartitioner) -> ShardedGridRunner {
        self.partitioner = p;
        self
    }

    /// Overrides how many times a failed shard is re-dispatched before
    /// the run gives up (default 1; completed cells are never re-run —
    /// retries cover only a shard's missing remainder). `0` fails fast,
    /// leaving resumption to a later invocation.
    #[must_use]
    pub fn with_retries(mut self, retries: usize) -> ShardedGridRunner {
        self.retries = retries;
        self
    }

    /// The checkpoint file of one shard.
    pub fn checkpoint_path(&self, shard: &GridShard) -> PathBuf {
        self.checkpoint_dir.join(format!("shard-{}.ckpt", shard.id))
    }

    /// Runs the grid, discarding streamed results except for the merged
    /// report.
    ///
    /// # Errors
    ///
    /// See [`ShardedGridRunner::run_observed`].
    pub fn run(&self, grid: &ScenarioGrid) -> Result<ShardedRunOutcome, GridError> {
        struct Ignore;
        impl CellSink for Ignore {
            fn accept(&mut self, _: usize, _: &CellResult) {}
        }
        self.run_observed(grid, &mut Ignore)
    }

    /// Runs the grid, streaming every cell result (checkpoint-replayed
    /// and freshly executed alike) into `sink` as it arrives, **and**
    /// retaining every result for the merged [`GridReport`] — parent
    /// memory is O(cells), like the in-process runner. For sweeps too
    /// large for one heap use [`ShardedGridRunner::run_streaming`],
    /// which retains nothing.
    ///
    /// # Errors
    ///
    /// * [`GridError::InvalidGrid`] before anything runs,
    /// * [`GridError::Io`] on checkpoint/pipe failures,
    /// * [`GridError::Incomplete`] when cells are still missing after the
    ///   configured retries — checkpoints retain all completed cells, so
    ///   calling `run_observed` again resumes instead of restarting.
    pub fn run_observed(
        &self,
        grid: &ScenarioGrid,
        sink: &mut dyn CellSink,
    ) -> Result<ShardedRunOutcome, GridError> {
        let (report, stats) = self.run_inner(grid, sink, true)?;
        Ok(ShardedRunOutcome {
            report: report.expect("retaining run produces a report"),
            replayed_cells: stats.replayed_cells,
            executed_cells: stats.executed_cells,
            workers_spawned: stats.workers_spawned,
        })
    }

    /// Runs the grid **without retaining any cell result** in the
    /// parent: each result reaches `sink` exactly once and is dropped.
    /// With bounded sinks ([`OnlineAggregator`](crate::OnlineAggregator),
    /// [`JsonlSpillSink`](crate::JsonlSpillSink)) parent memory is
    /// independent of the cell count — this is the entry point for
    /// sweeps that do not fit one heap (the full-fidelity record lives
    /// in the spill/checkpoints, not in memory).
    ///
    /// # Errors
    ///
    /// As [`ShardedGridRunner::run_observed`].
    pub fn run_streaming(
        &self,
        grid: &ScenarioGrid,
        sink: &mut dyn CellSink,
    ) -> Result<ShardedStreamStats, GridError> {
        let (_, stats) = self.run_inner(grid, sink, false)?;
        Ok(stats)
    }

    fn run_inner(
        &self,
        grid: &ScenarioGrid,
        sink: &mut dyn CellSink,
        retain: bool,
    ) -> Result<(Option<GridReport>, ShardedStreamStats), GridError> {
        grid.validate().map_err(GridError::InvalidGrid)?;
        let cells = grid.cells();
        let digest = grid_digest(grid);
        let shards = self.partitioner.partition(grid);
        fs::create_dir_all(&self.checkpoint_dir)?;

        let mut merge = MergeState {
            results: retain.then(|| {
                let mut slots: Vec<Option<CellResult>> = Vec::new();
                slots.resize_with(cells.len(), || None);
                slots
            }),
            received: vec![false; cells.len()],
            sink,
            done: 0,
        };

        // Phase 1: replay checkpoints.
        let mut replayed = 0usize;
        let mut jobs: Vec<ShardJob> = Vec::new();
        for shard in &shards {
            let path = self.checkpoint_path(shard);
            replayed += replay_checkpoint(&path, shard, digest, &cells, &mut merge)?;
            let remaining: Vec<usize> = shard
                .cells
                .iter()
                .copied()
                .filter(|&i| !merge.received[i])
                .collect();
            if !remaining.is_empty() {
                jobs.push(ShardJob {
                    shard: shard.clone(),
                    remaining,
                });
            }
        }

        // Phase 2: dispatch workers, retrying failed shards on their
        // remainders.
        let mut executed = 0usize;
        let mut spawned = 0usize;
        let mut failures: Vec<String> = Vec::new();
        let mut attempt = 0usize;
        while !jobs.is_empty() && attempt <= self.retries {
            let merge_lock = Mutex::new(&mut merge);
            let next = AtomicUsize::new(0);
            let stats = Mutex::new((0usize, 0usize, Vec::<(ShardJob, String)>::new()));
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(jobs.len()) {
                    scope.spawn(|| loop {
                        // ord: Relaxed — RMW atomicity alone partitions
                        // shard jobs; the merge/stats mutexes order the
                        // results.
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(j) else { break };
                        let (count, verdict) =
                            self.run_shard_job(grid, digest, &cells, job, &merge_lock);
                        let mut stats = stats.lock().expect("stats lock");
                        stats.1 += 1; // spawned
                        stats.0 += count; // cells simulated, even by a
                                          // worker that crashed later
                        match verdict {
                            Ok(()) => {}
                            Err(e) => {
                                // Recompute the remainder under the merge
                                // lock so replayed frames from this very
                                // attempt are not re-run.
                                let merge = merge_lock.lock().expect("merge lock");
                                let remaining: Vec<usize> = job
                                    .shard
                                    .cells
                                    .iter()
                                    .copied()
                                    .filter(|&i| !merge.received[i])
                                    .collect();
                                drop(merge);
                                if !remaining.is_empty() {
                                    stats.2.push((
                                        ShardJob {
                                            shard: job.shard.clone(),
                                            remaining,
                                        },
                                        e.to_string(),
                                    ));
                                }
                            }
                        }
                    });
                }
            });
            let (count, procs, failed) = stats.into_inner().expect("stats lock");
            executed += count;
            spawned += procs;
            failures = failed.iter().map(|(_, e)| e.clone()).collect();
            jobs = failed.into_iter().map(|(job, _)| job).collect();
            attempt += 1;
        }

        if merge.done < cells.len() {
            return Err(GridError::Incomplete {
                done: merge.done,
                total: cells.len(),
                failures,
            });
        }
        let report = merge.results.map(|slots| GridReport {
            cells: slots
                .into_iter()
                .map(|r| r.expect("all cells received"))
                .collect(),
        });
        Ok((
            report,
            ShardedStreamStats {
                cells: cells.len(),
                replayed_cells: replayed,
                executed_cells: executed,
                workers_spawned: spawned,
            },
        ))
    }

    /// Spawns one worker for `job` and merges its frames; returns the
    /// number of cells received (whatever the verdict — a crashed worker
    /// may still have banked results) plus the job's verdict.
    fn run_shard_job(
        &self,
        grid: &ScenarioGrid,
        digest: u64,
        cells: &[GridCell],
        job: &ShardJob,
        merge: &Mutex<&mut MergeState<'_>>,
    ) -> (usize, Result<(), GridError>) {
        let spec = shard_spec_to_json(grid, &job.shard.id, &job.remaining);
        let mut child = match Command::new(&self.worker_bin)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
        {
            Ok(child) => child,
            Err(e) => {
                return (
                    0,
                    Err(GridError::Io(format!(
                        "cannot spawn {}: {e}",
                        self.worker_bin.display()
                    ))),
                )
            }
        };
        // The worker consumes all of stdin before producing output, so
        // writing the whole spec first cannot deadlock.
        if let Err(e) = child
            .stdin
            .take()
            .expect("stdin was piped")
            .write_all(spec.as_bytes())
        {
            return (0, Err(reap(&mut child, format!("writing shard spec: {e}"))));
        }
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut reader = FrameReader::new(BufReader::new(stdout));
        let mut ckpt = match OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.checkpoint_path(&job.shard))
        {
            Ok(f) => f,
            Err(e) => return (0, Err(reap(&mut child, format!("opening checkpoint: {e}")))),
        };

        let mut received = 0usize;
        let verdict = loop {
            match reader.next_frame() {
                Err(e) => break Err(format!("reading worker stream: {e}")),
                Ok(FrameRead::Eof) => break Ok(()),
                Ok(FrameRead::Torn) => break Err("worker stream torn mid-frame".into()),
                Ok(FrameRead::Frame(payload)) => {
                    match accept_frame(&payload, digest, cells, Some(&job.remaining)) {
                        Err(e) => break Err(e),
                        Ok((index, result)) => {
                            // Checkpoint first (durable), then deliver.
                            if let Err(e) =
                                write_frame(&mut ckpt, &payload).and_then(|()| ckpt.flush())
                            {
                                break Err(format!("appending checkpoint: {e}"));
                            }
                            let mut merge = merge.lock().expect("merge lock");
                            merge.deliver(index, result);
                            received += 1;
                        }
                    }
                }
            }
        };
        let status = match child.wait() {
            Ok(s) => s,
            Err(e) => return (received, Err(GridError::Io(e.to_string()))),
        };
        let result = match verdict {
            Err(e) => Err(GridError::Worker(format!("shard {}: {e}", job.shard.id))),
            Ok(()) if !status.success() => Err(GridError::Worker(format!(
                "shard {}: worker exited with {status}",
                job.shard.id
            ))),
            Ok(()) if received < job.remaining.len() => Err(GridError::Worker(format!(
                "shard {}: worker stopped after {received}/{} cells",
                job.shard.id,
                job.remaining.len()
            ))),
            Ok(()) => Ok(()),
        };
        (received, result)
    }
}

struct ShardJob {
    shard: GridShard,
    remaining: Vec<usize>,
}

struct MergeState<'a> {
    /// `Some` only when the caller wants the merged [`GridReport`];
    /// `None` keeps parent memory independent of the cell count.
    results: Option<Vec<Option<CellResult>>>,
    received: Vec<bool>,
    sink: &'a mut dyn CellSink,
    done: usize,
}

impl MergeState<'_> {
    fn deliver(&mut self, index: usize, result: CellResult) {
        if self.received[index] {
            // A duplicate can only come from overlapping checkpoints of a
            // corrupt dir; first write wins, duplicates are dropped.
            return;
        }
        self.received[index] = true;
        match &mut self.results {
            Some(slots) => {
                self.sink.accept(index, &result);
                slots[index] = Some(result);
            }
            None => self.sink.accept_owned(index, result),
        }
        self.done += 1;
    }
}

fn reap(child: &mut Child, msg: String) -> GridError {
    let _ = child.kill();
    let _ = child.wait();
    GridError::Worker(msg)
}

/// Validates and reassembles one frame payload.
fn accept_frame(
    payload: &str,
    digest: u64,
    cells: &[GridCell],
    allowed: Option<&[usize]>,
) -> Result<(usize, CellResult), String> {
    let frame = frame_from_json(payload).map_err(|e| e.to_string())?;
    if frame.grid_digest != digest {
        return Err(format!(
            "frame is for grid {:016x}, expected {digest:016x}",
            frame.grid_digest
        ));
    }
    let Some(expected) = cells.get(frame.index) else {
        return Err(format!("frame cell index {} out of range", frame.index));
    };
    if frame.cell != *expected {
        return Err(format!("frame cell {} mismatches the grid", frame.index));
    }
    if let Some(allowed) = allowed {
        if !allowed.contains(&frame.index) {
            return Err(format!(
                "worker returned cell {} outside its shard",
                frame.index
            ));
        }
    }
    // Variant check before `reassemble`, whose mismatch asserts would
    // otherwise turn a corrupt-but-parseable frame into a parent panic —
    // this path must stay an Err so checkpoint truncation and shard
    // retries can handle it.
    let variant_matches = match &frame.outcome {
        CellOutcome::Piconet(_) => expected.piconets <= 1,
        CellOutcome::Scatternet(..) => expected.piconets >= 2,
    };
    if !variant_matches {
        return Err(format!(
            "frame cell {} carries the wrong outcome variant for {} piconet(s)",
            frame.index, expected.piconets
        ));
    }
    Ok((
        frame.index,
        CellResult::reassemble(*expected, frame.outcome),
    ))
}

/// Replays one shard checkpoint into the merge state; truncates torn
/// tails so subsequent appends keep the file parseable. Returns the
/// number of cells replayed.
fn replay_checkpoint(
    path: &Path,
    shard: &GridShard,
    digest: u64,
    cells: &[GridCell],
    merge: &mut MergeState<'_>,
) -> Result<usize, GridError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(GridError::Io(format!("{}: {e}", path.display()))),
    };
    let len = file.metadata()?.len();
    let mut reader = FrameReader::new(BufReader::new(file));
    let mut replayed = 0usize;
    let valid_prefix = loop {
        match reader.next_frame()? {
            FrameRead::Eof => break reader.consumed(),
            FrameRead::Torn => break reader.consumed(),
            FrameRead::Frame(payload) => {
                match accept_frame(&payload, digest, cells, Some(&shard.cells)) {
                    // A checkpoint frame this parent cannot use (foreign
                    // grid after a hash collision, corruption) poisons
                    // the file from that point; keep the valid prefix.
                    Err(_) => break reader.consumed() - frame_len(&payload),
                    Ok((index, result)) => {
                        if !merge.received[index] {
                            merge.deliver(index, result);
                            replayed += 1;
                        }
                    }
                }
            }
        }
    };
    if valid_prefix < len {
        // Drop the torn/foreign tail so this run's appends stay well-
        // formed.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_prefix)?;
    }
    Ok(replayed)
}

/// The on-disk size of a frame that was just read (prefix + payload +
/// newline) — used to rewind over an unusable frame.
fn frame_len(payload: &str) -> u64 {
    (payload.len().to_string().len() + 1 + payload.len() + 1) as u64
}
