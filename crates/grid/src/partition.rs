//! Deterministic, content-addressed grid sharding.
//!
//! A [`GridPartitioner`] splits a [`ScenarioGrid`] into [`GridShard`]s.
//! The cell → shard assignment is a **pure function of the grid digest**
//! (hash of the canonical grid spec) and the cell index: the shard layout
//! is identical on every machine and for every worker count, so a run
//! interrupted under 8 workers resumes seamlessly under 2, and checkpoint
//! files written by one invocation are valid for any other invocation of
//! the same grid.
//!
//! Cells are *hash-scattered* across shards rather than chunked
//! contiguously: grid order sorts by poller and piconet count, so
//! contiguous chunks would concentrate the expensive scatternet cells in
//! the trailing shards and serialise the tail of the run. Scattering
//! mixes cheap and expensive cells into every shard.

use crate::wire::{fnv1a64, grid_digest};
use btgs_core::ScenarioGrid;

/// One shard of a partitioned grid: a content-addressed subset of cell
/// indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridShard {
    /// Position of the shard in the partition (0-based).
    pub index: usize,
    /// The content address: a hex digest over the grid digest, the shard
    /// index and the member cells. Checkpoint files are named by this.
    pub id: String,
    /// Digest of the grid this shard belongs to.
    pub grid_digest: u64,
    /// Grid-order indices of the member cells, ascending.
    pub cells: Vec<usize>,
}

/// Splits grids into deterministic shards.
#[derive(Clone, Copy, Debug)]
pub struct GridPartitioner {
    target_cells_per_shard: usize,
}

impl Default for GridPartitioner {
    fn default() -> Self {
        GridPartitioner::new()
    }
}

impl GridPartitioner {
    /// The default partitioner: shards of (up to) 16 cells — small enough
    /// that a lost worker forfeits little work, large enough that process
    /// spawn overhead stays negligible next to simulation time.
    pub fn new() -> GridPartitioner {
        GridPartitioner {
            target_cells_per_shard: 16,
        }
    }

    /// Overrides the shard size target.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_target_cells_per_shard(n: usize) -> GridPartitioner {
        assert!(n > 0, "shards need at least one cell");
        GridPartitioner {
            target_cells_per_shard: n,
        }
    }

    /// The shard count this partitioner produces for `cell_count` cells.
    pub fn shard_count(&self, cell_count: usize) -> usize {
        cell_count.div_ceil(self.target_cells_per_shard).max(1)
    }

    /// The shard index of one cell — the pure assignment function. Does
    /// not depend on worker count, machine, or which other cells exist.
    pub fn shard_of(&self, grid_digest: u64, cell_index: usize, shard_count: usize) -> usize {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&grid_digest.to_le_bytes());
        key[8..].copy_from_slice(&(cell_index as u64).to_le_bytes());
        (fnv1a64(&key) % shard_count as u64) as usize
    }

    /// Partitions the grid.
    ///
    /// Every cell lands in exactly one shard; shards may end up slightly
    /// unequal (hash scatter), but never empty beyond what hashing makes
    /// unavoidable — empty shards are dropped, and the remaining shards
    /// keep their positional `index`.
    pub fn partition(&self, grid: &ScenarioGrid) -> Vec<GridShard> {
        let digest = grid_digest(grid);
        let n = grid.cells().len();
        let shard_count = self.shard_count(n);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for i in 0..n {
            members[self.shard_of(digest, i, shard_count)].push(i);
        }
        members
            .into_iter()
            .enumerate()
            .filter(|(_, cells)| !cells.is_empty())
            .map(|(index, cells)| GridShard {
                index,
                id: shard_address(digest, index, &cells),
                grid_digest: digest,
                cells,
            })
            .collect()
    }
}

/// The content address of a shard: hex FNV-1a over (grid digest, shard
/// index, member cells).
fn shard_address(grid_digest: u64, index: usize, cells: &[usize]) -> String {
    let mut bytes = Vec::with_capacity(16 + 8 * cells.len());
    bytes.extend_from_slice(&grid_digest.to_le_bytes());
    bytes.extend_from_slice(&(index as u64).to_le_bytes());
    for &c in cells {
        bytes.extend_from_slice(&(c as u64).to_le_bytes());
    }
    format!("{:016x}", fnv1a64(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_core::{BeSourceMix, PollerKind};
    use btgs_des::{SimDuration, SimTime};

    fn grid(seeds: u64) -> ScenarioGrid {
        ScenarioGrid {
            pollers: vec![PollerKind::PfpGs, PollerKind::FixedGs],
            piconets: vec![1],
            seeds: (1..=seeds).collect(),
            topologies: vec![btgs_core::Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(20),
            horizon: SimTime::from_secs(2),
            warmup: SimDuration::from_millis(500),
            include_be: false,
            be_load_scale: vec![1.0],
            be_source_mix: BeSourceMix::Cbr,
            telemetry: false,
        }
    }

    #[test]
    fn partition_is_exhaustive_and_disjoint() {
        let g = grid(40); // 80 cells
        let shards = GridPartitioner::new().partition(&g);
        assert!(shards.len() >= 80 / 16, "{} shards", shards.len());
        let mut seen = [false; 80];
        for shard in &shards {
            assert!(!shard.cells.is_empty());
            assert!(shard.cells.windows(2).all(|w| w[0] < w[1]), "ascending");
            for &c in &shard.cells {
                assert!(!seen[c], "cell {c} in two shards");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every cell assigned");
    }

    #[test]
    fn partition_is_deterministic_and_content_addressed() {
        let g = grid(16);
        let a = GridPartitioner::new().partition(&g);
        let b = GridPartitioner::new().partition(&g);
        assert_eq!(a, b);
        // Ids are stable hex and distinct.
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.id.len(), 16);
            for other in &a[i + 1..] {
                assert_ne!(s.id, other.id);
            }
        }
        // A different grid produces entirely different addresses.
        let c = GridPartitioner::new().partition(&grid(17));
        for s in &a {
            assert!(c.iter().all(|o| o.id != s.id));
        }
    }

    #[test]
    fn assignment_is_a_pure_function_of_digest_and_index() {
        let g = grid(16);
        let digest = grid_digest(&g);
        let p = GridPartitioner::new();
        let shard_count = p.shard_count(32);
        for i in 0..32 {
            let a = p.shard_of(digest, i, shard_count);
            let b = p.shard_of(digest, i, shard_count);
            assert_eq!(a, b);
            assert!(a < shard_count);
        }
    }

    #[test]
    fn shard_size_target_is_honoured() {
        let g = grid(32); // 64 cells
        let fine = GridPartitioner::with_target_cells_per_shard(4).partition(&g);
        assert!(fine.len() >= 10, "{}", fine.len());
        let coarse = GridPartitioner::with_target_cells_per_shard(64).partition(&g);
        assert_eq!(coarse.len(), 1);
        assert_eq!(coarse[0].cells.len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_target_is_rejected() {
        let _ = GridPartitioner::with_target_cells_per_shard(0);
    }

    #[test]
    fn scatter_mixes_grid_order() {
        // With 2 pollers x 40 seeds, contiguous chunking would put all of
        // poller 0 in the first shards; scattering must mix both pollers
        // into most shards.
        let g = grid(40);
        let shards = GridPartitioner::new().partition(&g);
        let mixed = shards
            .iter()
            .filter(|s| s.cells.iter().any(|&c| c < 40) && s.cells.iter().any(|&c| c >= 40))
            .count();
        assert!(
            mixed * 2 > shards.len(),
            "only {mixed}/{} shards mix pollers",
            shards.len()
        );
    }
}
