//! The grid wire format: grid specs, shard specs, and cell-result frames.
//!
//! Everything that crosses a process boundary (worker pipes, checkpoint
//! files, the JSONL spill archive) is JSON, one value per frame, with
//! three invariants:
//!
//! * **Full fidelity** — a [`CellOutcome`] serialises with every delay
//!   sample, so a result parsed in the parent is *byte-identical* (as
//!   observed through every public query, digest and table) to the one
//!   the worker measured. The scenario objects are *not* shipped: they
//!   are deterministic, cheap derivations of the cell that
//!   [`CellResult::reassemble`](btgs_core::CellResult::reassemble)
//!   recomputes parent-side.
//! * **Integer exactness** — timestamps, counts and seeds travel as JSON
//!   integers (see [`json`](crate::json)); floats (`be_load_scale`) use
//!   Rust's shortest-round-trip `{:?}` formatting.
//! * **Content addressing** — every frame carries the 64-bit FNV-1a
//!   digest of its grid's canonical spec, so a parent never merges
//!   frames from a different grid (a stale checkpoint directory, say).
//!
//! # Framing
//!
//! Streams are **length-prefixed JSONL**: an ASCII decimal byte length,
//! `\n`, the JSON payload, `\n`. The prefix lets a reader distinguish a
//! cleanly-ended stream from one torn mid-frame by a worker crash — a
//! torn tail is detected and discarded, never half-parsed.

use crate::json::{escape, Json};
use btgs_baseband::{AmAddr, Direction, LogicalChannel, PacketType};
use btgs_core::{BeSourceMix, CellOutcome, GridCell, PollerKind, ScenarioGrid, Topology};
use btgs_des::{SimDuration, SimTime};
use btgs_metrics::DelayStats;
use btgs_piconet::{
    ChainReport, FlowReport, FlowSpec, Histo32, PollCounters, RunReport, ScatternetReport,
    SlotLedger, TelemetryReport,
};
use btgs_traffic::FlowId;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// A wire-format decoding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire format error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn wire_err(what: impl Into<String>) -> WireError {
    WireError(what.into())
}

// ---------------------------------------------------------------------------
// FNV-1a hashing (content addressing)
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content digest of a grid: FNV-1a of its canonical spec JSON. Two
/// grids share a digest exactly when every axis, variant and horizon
/// matches — the key that shards, frames and checkpoints are addressed
/// by.
pub fn grid_digest(grid: &ScenarioGrid) -> u64 {
    fnv1a64(grid_to_json(grid).as_bytes())
}

// ---------------------------------------------------------------------------
// Grid spec
// ---------------------------------------------------------------------------

/// Serialises a grid spec canonically (field order fixed, floats via
/// `{:?}`); the digest is computed over exactly these bytes.
pub fn grid_to_json(grid: &ScenarioGrid) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"pollers\":[");
    for (i, p) in grid.pollers.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", escape(&p.label()));
    }
    s.push_str("],\"piconets\":[");
    push_ints(&mut s, grid.piconets.iter().map(|&p| u64::from(p)));
    s.push_str("],\"seeds\":[");
    push_ints(&mut s, grid.seeds.iter().copied());
    s.push_str("],\"topologies\":[");
    for (i, t) in grid.topologies.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", t.label());
    }
    s.push_str("],\"delay_req_ns\":[");
    push_ints(&mut s, grid.delay_requirements.iter().map(|d| d.as_nanos()));
    s.push_str("],\"chain_deadline_ns\":[");
    for (i, d) in grid.chain_deadlines.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        match d {
            None => s.push_str("null"),
            Some(d) => {
                let _ = write!(s, "{}", d.as_nanos());
            }
        }
    }
    let _ = write!(
        s,
        "],\"bidirectional\":{},\"bridge_cycle_ns\":{},\"horizon_ns\":{},\"warmup_ns\":{},\
         \"include_be\":{},\"be_load_scale\":[",
        grid.bidirectional,
        grid.bridge_cycle.as_nanos(),
        grid.horizon.as_nanos(),
        grid.warmup.as_nanos(),
        grid.include_be,
    );
    for (i, &scale) in grid.be_load_scale.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{scale:?}");
    }
    let _ = write!(
        s,
        "],\"be_source_mix\":\"{}\",\"telemetry\":{}}}",
        grid.be_source_mix.label(),
        grid.telemetry,
    );
    s
}

fn push_ints(s: &mut String, items: impl Iterator<Item = u64>) {
    for (i, v) in items.enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, WireError> {
    j.get(key)
        .ok_or_else(|| wire_err(format!("missing field `{key}`")))
}

fn u64_field(j: &Json, key: &str) -> Result<u64, WireError> {
    field(j, key)?
        .as_u64()
        .ok_or_else(|| wire_err(format!("field `{key}` is not a u64")))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, WireError> {
    field(j, key)?
        .as_bool()
        .ok_or_else(|| wire_err(format!("field `{key}` is not a bool")))
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, WireError> {
    field(j, key)?
        .as_str()
        .ok_or_else(|| wire_err(format!("field `{key}` is not a string")))
}

fn arr_field<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], WireError> {
    field(j, key)?
        .as_arr()
        .ok_or_else(|| wire_err(format!("field `{key}` is not an array")))
}

/// Parses a grid spec.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn grid_from_json(j: &Json) -> Result<ScenarioGrid, WireError> {
    let pollers = arr_field(j, "pollers")?
        .iter()
        .map(|p| {
            p.as_str()
                .and_then(PollerKind::from_label)
                .ok_or_else(|| wire_err(format!("unknown poller {p:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let piconets = arr_field(j, "piconets")?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|v| u16::try_from(v).ok())
                .ok_or_else(|| wire_err("bad piconet count"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = arr_field(j, "seeds")?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| wire_err("bad seed")))
        .collect::<Result<Vec<_>, _>>()?;
    let topologies = arr_field(j, "topologies")?
        .iter()
        .map(|v| {
            v.as_str()
                .and_then(Topology::from_label)
                .ok_or_else(|| wire_err(format!("unknown topology {v:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let delay_requirements = arr_field(j, "delay_req_ns")?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(SimDuration::from_nanos)
                .ok_or_else(|| wire_err("bad delay requirement"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let chain_deadlines = arr_field(j, "chain_deadline_ns")?
        .iter()
        .map(|v| {
            if v.is_null() {
                Ok(None)
            } else {
                v.as_u64()
                    .map(|ns| Some(SimDuration::from_nanos(ns)))
                    .ok_or_else(|| wire_err("bad chain deadline"))
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let be_load_scale = arr_field(j, "be_load_scale")?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| wire_err("bad be_load_scale")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ScenarioGrid {
        pollers,
        piconets,
        seeds,
        topologies,
        delay_requirements,
        chain_deadlines,
        bidirectional: bool_field(j, "bidirectional")?,
        bridge_cycle: SimDuration::from_nanos(u64_field(j, "bridge_cycle_ns")?),
        horizon: SimTime::from_nanos(u64_field(j, "horizon_ns")?),
        warmup: SimDuration::from_nanos(u64_field(j, "warmup_ns")?),
        include_be: bool_field(j, "include_be")?,
        be_load_scale,
        be_source_mix: BeSourceMix::from_label(str_field(j, "be_source_mix")?)
            .ok_or_else(|| wire_err("unknown be_source_mix"))?,
        telemetry: bool_field(j, "telemetry")?,
    })
}

// ---------------------------------------------------------------------------
// Shard spec (parent → worker)
// ---------------------------------------------------------------------------

/// What a worker receives on stdin: the grid, the shard's identity, and
/// the grid-order indices of the cells it must run.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// The full grid (workers re-derive identical cells from it).
    pub grid: ScenarioGrid,
    /// The shard's content-addressed id (hex).
    pub shard_id: String,
    /// Grid-order indices of the cells to run.
    pub cells: Vec<usize>,
}

/// Serialises a shard spec.
pub fn shard_spec_to_json(grid: &ScenarioGrid, shard_id: &str, cells: &[usize]) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"grid\":{},\"shard\":\"{}\",\"cells\":[",
        grid_to_json(grid),
        escape(shard_id)
    );
    push_ints(&mut s, cells.iter().map(|&i| i as u64));
    s.push_str("]}");
    s
}

/// Parses a shard spec.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn shard_spec_from_json(src: &str) -> Result<ShardSpec, WireError> {
    let j = Json::parse(src).map_err(|e| wire_err(e.to_string()))?;
    let grid = grid_from_json(field(&j, "grid")?)?;
    let cells = arr_field(&j, "cells")?
        .iter()
        .map(|v| v.as_usize().ok_or_else(|| wire_err("bad cell index")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ShardSpec {
        grid,
        shard_id: str_field(&j, "shard")?.to_owned(),
        cells,
    })
}

// ---------------------------------------------------------------------------
// Cell frames (worker → parent, checkpoint files, spill archive)
// ---------------------------------------------------------------------------

/// A decoded cell-result frame.
#[derive(Clone, Debug)]
pub struct CellFrame {
    /// Digest of the grid the cell belongs to.
    pub grid_digest: u64,
    /// The cell's index in grid order.
    pub index: usize,
    /// The cell coordinates (cross-checked against the parent's grid).
    pub cell: GridCell,
    /// The measured outcome.
    pub outcome: CellOutcome,
}

/// Serialises one cell result as a single JSON line (no interior
/// newlines).
pub fn frame_to_json(digest: u64, index: usize, cell: &GridCell, outcome: &CellOutcome) -> String {
    let mut s = String::with_capacity(4096);
    let _ = write!(
        s,
        "{{\"v\":1,\"grid\":{digest},\"index\":{index},\"cell\":{},",
        cell_to_json(cell)
    );
    match outcome {
        CellOutcome::Piconet(report) => {
            let _ = write!(s, "\"piconet\":{}}}", run_report_to_json(report));
        }
        CellOutcome::Scatternet(report, telemetry) => {
            let _ = write!(s, "\"scatternet\":{}", scatternet_report_to_json(report));
            if let Some(t) = telemetry {
                let _ = write!(s, ",\"telemetry\":{}", telemetry_to_json(t));
            }
            s.push('}');
        }
    }
    debug_assert!(!s.contains('\n'), "frames must be single lines");
    s
}

/// Parses one cell-result frame.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn frame_from_json(src: &str) -> Result<CellFrame, WireError> {
    let j = Json::parse(src).map_err(|e| wire_err(e.to_string()))?;
    if u64_field(&j, "v")? != 1 {
        return Err(wire_err("unsupported frame version"));
    }
    let cell = cell_from_json(field(&j, "cell")?)?;
    let outcome = match (j.get("piconet"), j.get("scatternet")) {
        (Some(r), None) => CellOutcome::Piconet(run_report_from_json(r)?),
        (None, Some(r)) => CellOutcome::Scatternet(
            scatternet_report_from_json(r)?,
            // Telemetry frames are optional: a frame without one decodes
            // to `None` (an unobserved cell).
            j.get("telemetry")
                .map(telemetry_from_json)
                .transpose()?
                .map(Box::new),
        ),
        _ => return Err(wire_err("frame must carry exactly one outcome")),
    };
    Ok(CellFrame {
        grid_digest: u64_field(&j, "grid")?,
        index: u64_field(&j, "index")? as usize,
        cell,
        outcome,
    })
}

fn cell_to_json(c: &GridCell) -> String {
    let mut s = String::with_capacity(192);
    let _ = write!(
        s,
        "{{\"poller\":\"{}\",\"piconets\":{},\"seed\":{},\"topo\":\"{}\",\"dreq_ns\":{},\
         \"cd_ns\":{},\"bi\":{},\"bridge_ns\":{},\"horizon_ns\":{},\"warmup_ns\":{},\
         \"be\":{},\"bl\":{:?},\"mix\":\"{}\",\"telemetry\":{}}}",
        escape(&c.poller.label()),
        c.piconets,
        c.seed,
        c.topology.label(),
        c.delay_requirement.as_nanos(),
        c.chain_deadline
            .map_or_else(|| "null".to_owned(), |d| d.as_nanos().to_string()),
        c.bidirectional,
        c.bridge_cycle.as_nanos(),
        c.horizon.as_nanos(),
        c.warmup.as_nanos(),
        c.include_be,
        c.be_load_scale,
        c.be_source_mix.label(),
        c.telemetry,
    );
    s
}

fn cell_from_json(j: &Json) -> Result<GridCell, WireError> {
    let cd = field(j, "cd_ns")?;
    Ok(GridCell {
        poller: PollerKind::from_label(str_field(j, "poller")?)
            .ok_or_else(|| wire_err("unknown poller"))?,
        piconets: u16::try_from(u64_field(j, "piconets")?)
            .map_err(|_| wire_err("bad piconet count"))?,
        seed: u64_field(j, "seed")?,
        topology: Topology::from_label(str_field(j, "topo")?)
            .ok_or_else(|| wire_err("unknown topology"))?,
        delay_requirement: SimDuration::from_nanos(u64_field(j, "dreq_ns")?),
        chain_deadline: if cd.is_null() {
            None
        } else {
            Some(SimDuration::from_nanos(
                cd.as_u64().ok_or_else(|| wire_err("bad cd_ns"))?,
            ))
        },
        bidirectional: bool_field(j, "bi")?,
        bridge_cycle: SimDuration::from_nanos(u64_field(j, "bridge_ns")?),
        horizon: SimTime::from_nanos(u64_field(j, "horizon_ns")?),
        warmup: SimDuration::from_nanos(u64_field(j, "warmup_ns")?),
        include_be: bool_field(j, "be")?,
        be_load_scale: field(j, "bl")?.as_f64().ok_or_else(|| wire_err("bad bl"))?,
        be_source_mix: BeSourceMix::from_label(str_field(j, "mix")?)
            .ok_or_else(|| wire_err("unknown mix"))?,
        telemetry: bool_field(j, "telemetry")?,
    })
}

// ---------------------------------------------------------------------------
// Report serialisation
// ---------------------------------------------------------------------------

fn direction_code(d: Direction) -> &'static str {
    match d {
        Direction::MasterToSlave => "ms",
        Direction::SlaveToMaster => "sm",
    }
}

fn direction_from(code: &str) -> Result<Direction, WireError> {
    match code {
        "ms" => Ok(Direction::MasterToSlave),
        "sm" => Ok(Direction::SlaveToMaster),
        _ => Err(wire_err(format!("unknown direction {code:?}"))),
    }
}

fn channel_code(c: LogicalChannel) -> &'static str {
    match c {
        LogicalChannel::GuaranteedService => "gs",
        LogicalChannel::BestEffort => "be",
    }
}

fn channel_from(code: &str) -> Result<LogicalChannel, WireError> {
    match code {
        "gs" => Ok(LogicalChannel::GuaranteedService),
        "be" => Ok(LogicalChannel::BestEffort),
        _ => Err(wire_err(format!("unknown channel {code:?}"))),
    }
}

fn packet_type_code(t: PacketType) -> &'static str {
    match t {
        PacketType::Poll => "poll",
        PacketType::Null => "null",
        PacketType::Dm1 => "dm1",
        PacketType::Dm3 => "dm3",
        PacketType::Dm5 => "dm5",
        PacketType::Dh1 => "dh1",
        PacketType::Dh3 => "dh3",
        PacketType::Dh5 => "dh5",
        PacketType::Hv1 => "hv1",
        PacketType::Hv2 => "hv2",
        PacketType::Hv3 => "hv3",
    }
}

fn packet_type_from(code: &str) -> Result<PacketType, WireError> {
    [
        PacketType::Poll,
        PacketType::Null,
        PacketType::Dm1,
        PacketType::Dm3,
        PacketType::Dm5,
        PacketType::Dh1,
        PacketType::Dh3,
        PacketType::Dh5,
        PacketType::Hv1,
        PacketType::Hv2,
        PacketType::Hv3,
    ]
    .into_iter()
    .find(|&t| packet_type_code(t) == code)
    .ok_or_else(|| wire_err(format!("unknown packet type {code:?}")))
}

fn slave_from(v: u64) -> Result<AmAddr, WireError> {
    u8::try_from(v)
        .ok()
        .and_then(AmAddr::new)
        .ok_or_else(|| wire_err(format!("bad slave address {v}")))
}

fn flow_spec_to_json(f: &FlowSpec) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"id\":{},\"slave\":{},\"dir\":\"{}\",\"chan\":\"{}\",\"types\":",
        f.id.0,
        f.slave.get(),
        direction_code(f.direction),
        channel_code(f.channel),
    );
    match &f.allowed_types {
        None => s.push_str("null"),
        Some(types) => {
            s.push('[');
            for (i, &t) in types.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", packet_type_code(t));
            }
            s.push(']');
        }
    }
    s.push('}');
    s
}

fn flow_spec_from_json(j: &Json) -> Result<FlowSpec, WireError> {
    let mut spec = FlowSpec::new(
        FlowId(u32::try_from(u64_field(j, "id")?).map_err(|_| wire_err("flow id out of range"))?),
        slave_from(u64_field(j, "slave")?)?,
        direction_from(str_field(j, "dir")?)?,
        channel_from(str_field(j, "chan")?)?,
    );
    let types = field(j, "types")?;
    if !types.is_null() {
        let list = types
            .as_arr()
            .ok_or_else(|| wire_err("`types` is not an array"))?
            .iter()
            .map(|t| {
                t.as_str()
                    .ok_or_else(|| wire_err("bad packet type"))
                    .and_then(packet_type_from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        spec = spec.with_allowed_types(list);
    }
    Ok(spec)
}

fn delay_to_json(d: &DelayStats) -> String {
    let mut s = String::with_capacity(16 + 12 * d.count());
    s.push('[');
    let mut first = true;
    d.for_each_nanos(|ns| {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{ns}");
    });
    s.push(']');
    s
}

fn delay_from_json(j: &Json) -> Result<DelayStats, WireError> {
    let samples = j
        .as_arr()
        .ok_or_else(|| wire_err("delay samples are not an array"))?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| wire_err("bad delay sample")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DelayStats::from_nanos_samples(samples))
}

fn flow_report_to_json(id: FlowId, r: &FlowReport) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{{\"id\":{},\"op\":{},\"ob\":{},\"dp\":{},\"db\":{},\"lb\":{},\"delay\":{}}}",
        id.0,
        r.offered_packets,
        r.offered_bytes,
        r.delivered_packets,
        r.delivered_bytes,
        r.lost_bytes,
        delay_to_json(&r.delay),
    );
    s
}

fn flow_report_from_json(j: &Json) -> Result<(FlowId, FlowReport), WireError> {
    Ok((
        FlowId(u32::try_from(u64_field(j, "id")?).map_err(|_| wire_err("flow id out of range"))?),
        FlowReport {
            offered_packets: u64_field(j, "op")?,
            offered_bytes: u64_field(j, "ob")?,
            delivered_packets: u64_field(j, "dp")?,
            delivered_bytes: u64_field(j, "db")?,
            lost_bytes: u64_field(j, "lb")?,
            delay: delay_from_json(field(j, "delay")?)?,
        },
    ))
}

fn ledger_to_json(l: &SlotLedger) -> String {
    format!(
        "{{\"gd\":{},\"go\":{},\"gr\":{},\"bd\":{},\"bo\":{},\"br\":{},\"sco\":{}}}",
        l.gs_data, l.gs_overhead, l.gs_retx, l.be_data, l.be_overhead, l.be_retx, l.sco
    )
}

fn ledger_from_json(j: &Json) -> Result<SlotLedger, WireError> {
    Ok(SlotLedger {
        gs_data: u64_field(j, "gd")?,
        gs_overhead: u64_field(j, "go")?,
        gs_retx: u64_field(j, "gr")?,
        be_data: u64_field(j, "bd")?,
        be_overhead: u64_field(j, "bo")?,
        be_retx: u64_field(j, "br")?,
        sco: u64_field(j, "sco")?,
    })
}

fn polls_to_json(p: &PollCounters) -> String {
    format!("[{},{}]", p.successful, p.unsuccessful)
}

fn polls_from_json(j: &Json) -> Result<PollCounters, WireError> {
    let arr = j
        .as_arr()
        .ok_or_else(|| wire_err("poll counters are not an array"))?;
    match arr {
        [s, u] => Ok(PollCounters {
            successful: s.as_u64().ok_or_else(|| wire_err("bad poll counter"))?,
            unsuccessful: u.as_u64().ok_or_else(|| wire_err("bad poll counter"))?,
        }),
        _ => Err(wire_err("poll counters need exactly two entries")),
    }
}

/// Serialises a [`RunReport`] with full sample fidelity.
pub fn run_report_to_json(r: &RunReport) -> String {
    let mut s = String::with_capacity(4096);
    let _ = write!(
        s,
        "{{\"ws\":{},\"we\":{},\"poller\":\"{}\",\"events\":{},\"flows\":[",
        r.window_start.as_nanos(),
        r.window_end.as_nanos(),
        escape(&r.poller),
        r.events_processed,
    );
    for (i, f) in r.flows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&flow_spec_to_json(f));
    }
    s.push_str("],\"sco\":[");
    for (i, (id, slave)) in r.sco_flows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},{}]", id.0, slave.get());
    }
    let _ = write!(
        s,
        "],\"ledger\":{},\"gs_polls\":{},\"be_polls\":{},\"per_flow\":[",
        ledger_to_json(&r.ledger),
        polls_to_json(&r.gs_polls),
        polls_to_json(&r.be_polls),
    );
    // BTreeMap iteration is id-sorted — a canonical order.
    for (i, (id, fr)) in r.per_flow.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&flow_report_to_json(*id, fr));
    }
    s.push_str("]}");
    s
}

/// Parses a [`RunReport`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn run_report_from_json(j: &Json) -> Result<RunReport, WireError> {
    let flows = arr_field(j, "flows")?
        .iter()
        .map(flow_spec_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let sco_flows = arr_field(j, "sco")?
        .iter()
        .map(|pair| {
            let arr = pair.as_arr().ok_or_else(|| wire_err("bad sco entry"))?;
            match arr {
                [id, slave] => Ok((
                    FlowId(
                        id.as_u64()
                            .and_then(|v| u32::try_from(v).ok())
                            .ok_or_else(|| wire_err("bad sco flow id"))?,
                    ),
                    slave_from(slave.as_u64().ok_or_else(|| wire_err("bad sco slave"))?)?,
                )),
                _ => Err(wire_err("sco entries are [id, slave] pairs")),
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut per_flow = BTreeMap::new();
    for entry in arr_field(j, "per_flow")? {
        let (id, report) = flow_report_from_json(entry)?;
        if per_flow.insert(id, report).is_some() {
            return Err(wire_err(format!("duplicate per-flow report for {id}")));
        }
    }
    Ok(RunReport {
        window_start: SimTime::from_nanos(u64_field(j, "ws")?),
        window_end: SimTime::from_nanos(u64_field(j, "we")?),
        flows,
        sco_flows,
        per_flow,
        ledger: ledger_from_json(field(j, "ledger")?)?,
        gs_polls: polls_from_json(field(j, "gs_polls")?)?,
        be_polls: polls_from_json(field(j, "be_polls")?)?,
        events_processed: u64_field(j, "events")?,
        poller: str_field(j, "poller")?.to_owned(),
    })
}

fn chain_report_to_json(c: &ChainReport) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"hops\":[");
    push_ints(&mut s, c.hops.iter().map(|h| u64::from(h.0)));
    let _ = write!(
        s,
        "],\"relayed\":{},\"delivered\":{},\"e2e\":{},\"residence\":{}}}",
        c.relayed_packets,
        c.delivered_packets,
        delay_to_json(&c.e2e),
        delay_to_json(&c.residence),
    );
    s
}

fn chain_report_from_json(j: &Json) -> Result<ChainReport, WireError> {
    Ok(ChainReport {
        hops: arr_field(j, "hops")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .map(FlowId)
                    .ok_or_else(|| wire_err("bad hop id"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        relayed_packets: u64_field(j, "relayed")?,
        delivered_packets: u64_field(j, "delivered")?,
        e2e: delay_from_json(field(j, "e2e")?)?,
        residence: delay_from_json(field(j, "residence")?)?,
    })
}

/// Serialises a [`ScatternetReport`] with full sample fidelity.
pub fn scatternet_report_to_json(r: &ScatternetReport) -> String {
    let mut s = String::with_capacity(8192);
    s.push_str("{\"piconets\":[");
    for (i, p) in r.piconets.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&run_report_to_json(p));
    }
    s.push_str("],\"chains\":[");
    for (i, c) in r.chains.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&chain_report_to_json(c));
    }
    let _ = write!(
        s,
        "],\"events\":{},\"phases\":{},\"barrier_rounds\":{},\"islands_claimed\":{},\"relays_staged\":{},\"widening_stretches\":{},\"islands_skipped_idle\":{},\"relays_injected\":{}}}",
        r.events_processed,
        r.phases_run,
        r.barrier_rounds,
        r.islands_claimed,
        r.relays_staged,
        r.widening_stretches,
        r.islands_skipped_idle,
        r.relays_injected,
    );
    s
}

/// Parses a [`ScatternetReport`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn scatternet_report_from_json(j: &Json) -> Result<ScatternetReport, WireError> {
    Ok(ScatternetReport {
        piconets: arr_field(j, "piconets")?
            .iter()
            .map(run_report_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        chains: arr_field(j, "chains")?
            .iter()
            .map(chain_report_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        events_processed: u64_field(j, "events")?,
        phases_run: u64_field(j, "phases")?,
        barrier_rounds: u64_field(j, "barrier_rounds")?,
        islands_claimed: u64_field(j, "islands_claimed")?,
        relays_staged: u64_field(j, "relays_staged")?,
        widening_stretches: u64_field(j, "widening_stretches")?,
        islands_skipped_idle: u64_field(j, "islands_skipped_idle")?,
        relays_injected: u64_field(j, "relays_injected")?,
    })
}

fn histo_to_json(h: &Histo32) -> String {
    let mut s = String::with_capacity(160);
    s.push_str("{\"counts\":[");
    push_ints(&mut s, h.counts.iter().copied());
    let _ = write!(s, "],\"count\":{},\"sum\":{}}}", h.count, h.sum);
    s
}

fn histo_from_json(j: &Json) -> Result<Histo32, WireError> {
    let raw = arr_field(j, "counts")?;
    if raw.len() != 32 {
        return Err(wire_err(format!("histogram has {} buckets", raw.len())));
    }
    let mut counts = [0u64; 32];
    for (c, v) in counts.iter_mut().zip(raw.iter()) {
        *c = v.as_u64().ok_or_else(|| wire_err("bad histogram bucket"))?;
    }
    Ok(Histo32 {
        counts,
        count: u64_field(j, "count")?,
        sum: u64_field(j, "sum")?,
    })
}

/// Serialises a [`TelemetryReport`] (the optional per-shard telemetry
/// frame payload; also the `btgs-obs` CLI's `--telemetry` output).
pub fn telemetry_to_json(t: &TelemetryReport) -> String {
    let mut s = String::with_capacity(1024);
    let _ = write!(
        s,
        "{{\"events\":{},\"phases\":{},\"barrier_rounds\":{},\"islands_claimed\":{},\
         \"relays_staged\":{},\"relays_injected\":{},\"widening_stretches\":{},\
         \"islands_skipped_idle\":{},\"gs_polls_successful\":{},\"gs_polls_unsuccessful\":{},\
         \"be_polls_successful\":{},\"be_polls_unsuccessful\":{},\"trace_dropped\":{}",
        t.events_processed,
        t.phases_run,
        t.barrier_rounds,
        t.islands_claimed,
        t.relays_staged,
        t.relays_injected,
        t.widening_stretches,
        t.islands_skipped_idle,
        t.gs_polls_successful,
        t.gs_polls_unsuccessful,
        t.be_polls_successful,
        t.be_polls_unsuccessful,
        t.trace_dropped,
    );
    for (key, h) in [
        ("phase_width_ns", &t.phase_width_ns),
        ("relay_pool", &t.relay_pool),
        ("wheel_pending", &t.wheel_pending),
        ("wheel_near", &t.wheel_near),
        ("events_per_claim", &t.events_per_claim),
    ] {
        let _ = write!(s, ",\"{key}\":{}", histo_to_json(h));
    }
    s.push('}');
    s
}

/// Parses a [`TelemetryReport`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn telemetry_from_json(j: &Json) -> Result<TelemetryReport, WireError> {
    Ok(TelemetryReport {
        events_processed: u64_field(j, "events")?,
        phases_run: u64_field(j, "phases")?,
        barrier_rounds: u64_field(j, "barrier_rounds")?,
        islands_claimed: u64_field(j, "islands_claimed")?,
        relays_staged: u64_field(j, "relays_staged")?,
        relays_injected: u64_field(j, "relays_injected")?,
        widening_stretches: u64_field(j, "widening_stretches")?,
        islands_skipped_idle: u64_field(j, "islands_skipped_idle")?,
        gs_polls_successful: u64_field(j, "gs_polls_successful")?,
        gs_polls_unsuccessful: u64_field(j, "gs_polls_unsuccessful")?,
        be_polls_successful: u64_field(j, "be_polls_successful")?,
        be_polls_unsuccessful: u64_field(j, "be_polls_unsuccessful")?,
        phase_width_ns: histo_from_json(field(j, "phase_width_ns")?)?,
        relay_pool: histo_from_json(field(j, "relay_pool")?)?,
        wheel_pending: histo_from_json(field(j, "wheel_pending")?)?,
        wheel_near: histo_from_json(field(j, "wheel_near")?)?,
        events_per_claim: histo_from_json(field(j, "events_per_claim")?)?,
        trace_dropped: u64_field(j, "trace_dropped")?,
    })
}

// ---------------------------------------------------------------------------
// Length-prefixed framing
// ---------------------------------------------------------------------------

/// Writes one frame: ASCII decimal payload length, `\n`, payload, `\n`.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut dyn Write, payload: &str) -> io::Result<()> {
    write!(w, "{}\n{payload}\n", payload.len())
}

/// Reads length-prefixed frames off a byte stream, tracking how many
/// bytes formed *complete* frames so torn tails can be truncated away.
pub struct FrameReader<R> {
    inner: R,
    /// Bytes consumed by fully-read frames (prefix + payload + newline).
    consumed: u64,
}

/// One `FrameReader::next_frame` outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame's payload.
    Frame(String),
    /// Clean end of stream (no partial data).
    Eof,
    /// The stream ended mid-frame (crash tear); the partial bytes after
    /// [`FrameReader::consumed`] should be discarded.
    Torn,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner, consumed: 0 }
    }

    /// Bytes consumed by complete frames so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Reads the next frame.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying reader; malformed
    /// prefixes and truncation are reported as [`FrameRead::Torn`], not
    /// errors, because they are the expected signature of a killed
    /// writer.
    pub fn next_frame(&mut self) -> io::Result<FrameRead> {
        // Length prefix line.
        let mut prefix = String::new();
        let got = self.inner.read_line(&mut prefix)?;
        if got == 0 {
            return Ok(FrameRead::Eof);
        }
        if !prefix.ends_with('\n') {
            return Ok(FrameRead::Torn);
        }
        let Ok(len) = prefix.trim().parse::<usize>() else {
            return Ok(FrameRead::Torn);
        };
        // Guard against absurd prefixes from corruption: refuse to
        // allocate more than 1 GiB for one frame.
        if len > 1 << 30 {
            return Ok(FrameRead::Torn);
        }
        let mut payload = vec![0u8; len + 1];
        let mut filled = 0;
        while filled < payload.len() {
            let n = self.inner.read(&mut payload[filled..])?;
            if n == 0 {
                return Ok(FrameRead::Torn);
            }
            filled += n;
        }
        if payload.pop() != Some(b'\n') {
            return Ok(FrameRead::Torn);
        }
        match String::from_utf8(payload) {
            Ok(text) => {
                self.consumed += (prefix.len() + len + 1) as u64;
                Ok(FrameRead::Frame(text))
            }
            Err(_) => Ok(FrameRead::Torn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_grid() -> ScenarioGrid {
        ScenarioGrid {
            pollers: vec![
                PollerKind::PfpGs,
                PollerKind::Custom(btgs_core::Improvements::ALL),
            ],
            piconets: vec![1, 2],
            seeds: vec![1, u64::MAX],
            topologies: vec![Topology::Chain],
            delay_requirements: vec![SimDuration::from_millis(40)],
            chain_deadlines: vec![None],
            bidirectional: false,
            bridge_cycle: SimDuration::from_millis(20),
            horizon: SimTime::from_secs(2),
            warmup: SimDuration::from_millis(500),
            include_be: true,
            be_load_scale: vec![0.5, 1.0, 1.75],
            be_source_mix: BeSourceMix::Poisson,
            telemetry: false,
        }
    }

    fn grids_equal(a: &ScenarioGrid, b: &ScenarioGrid) -> bool {
        grid_to_json(a) == grid_to_json(b)
    }

    #[test]
    fn grid_spec_round_trips_and_digest_is_content_addressed() {
        let grid = sample_grid();
        let json = grid_to_json(&grid);
        let parsed = grid_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert!(grids_equal(&grid, &parsed));
        assert_eq!(grid_digest(&grid), grid_digest(&parsed));

        // Any change to any axis changes the digest.
        let mut other = sample_grid();
        other.seeds.push(7);
        assert_ne!(grid_digest(&grid), grid_digest(&other));
        let mut other = sample_grid();
        other.be_load_scale[0] = 0.25;
        assert_ne!(grid_digest(&grid), grid_digest(&other));
        let mut other = sample_grid();
        other.be_source_mix = BeSourceMix::Cbr;
        assert_ne!(grid_digest(&grid), grid_digest(&other));
    }

    #[test]
    fn shard_spec_round_trips() {
        let grid = sample_grid();
        let json = shard_spec_to_json(&grid, "abc123", &[0, 5, 9]);
        let spec = shard_spec_from_json(&json).unwrap();
        assert!(grids_equal(&grid, &spec.grid));
        assert_eq!(spec.shard_id, "abc123");
        assert_eq!(spec.cells, vec![0, 5, 9]);
    }

    #[test]
    fn cell_frame_round_trips_single_piconet() {
        let mut grid = sample_grid();
        grid.piconets = vec![1];
        grid.seeds = vec![3];
        grid.pollers = vec![PollerKind::PfpGs];
        grid.be_load_scale = vec![1.75];
        grid.horizon = SimTime::from_secs(1);
        let cell = grid.cells()[0];
        let outcome = cell.simulate();
        let digest = grid_digest(&grid);
        let json = frame_to_json(digest, 0, &cell, &outcome);
        assert!(!json.contains('\n'));
        let frame = frame_from_json(&json).unwrap();
        assert_eq!(frame.grid_digest, digest);
        assert_eq!(frame.index, 0);
        assert_eq!(frame.cell, cell);
        // Full fidelity: reassembled results are byte-identical through
        // the digest.
        let direct = btgs_core::CellResult::reassemble(cell, outcome);
        let parsed = btgs_core::CellResult::reassemble(cell, frame.outcome);
        let a = btgs_core::GridReport {
            cells: vec![direct],
        };
        let b = btgs_core::GridReport {
            cells: vec![parsed],
        };
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.summary_table().render(), b.summary_table().render());
        assert_eq!(a.cells[0].gs_violations(), b.cells[0].gs_violations());
        assert_eq!(
            a.cells[0].report.flow(FlowId(1)).delay.quantile(0.5),
            b.cells[0].report.flow(FlowId(1)).delay.quantile(0.5),
        );
    }

    #[test]
    fn cell_frame_round_trips_scatternet() {
        let mut grid = sample_grid();
        grid.piconets = vec![2];
        grid.seeds = vec![1];
        grid.pollers = vec![PollerKind::PfpGs];
        grid.be_load_scale = vec![1.0];
        grid.be_source_mix = BeSourceMix::Cbr;
        grid.horizon = SimTime::from_secs(1);
        grid.warmup = SimDuration::from_millis(200);
        let cell = grid.cells()[0];
        let outcome = cell.simulate();
        let json = frame_to_json(grid_digest(&grid), 0, &cell, &outcome);
        let frame = frame_from_json(&json).unwrap();
        let direct = btgs_core::GridReport {
            cells: vec![btgs_core::CellResult::reassemble(cell, outcome)],
        };
        let parsed = btgs_core::GridReport {
            cells: vec![btgs_core::CellResult::reassemble(cell, frame.outcome)],
        };
        assert_eq!(direct.digest(), parsed.digest());
        let sn = parsed.cells[0].scatternet.as_ref().unwrap();
        assert_eq!(sn.report.piconets.len(), 2);
        assert!(sn.report.chains[0].delivered_packets > 0);
        assert_eq!(
            sn.report.chains[0].e2e.sum_nanos(),
            direct.cells[0].scatternet.as_ref().unwrap().report.chains[0]
                .e2e
                .sum_nanos(),
            "exact sums survive the wire"
        );
    }

    #[test]
    fn telemetry_rides_frames_and_leaves_digests_alone() {
        let mut grid = sample_grid();
        grid.piconets = vec![2];
        grid.seeds = vec![1];
        grid.pollers = vec![PollerKind::PfpGs];
        grid.be_load_scale = vec![1.0];
        grid.be_source_mix = BeSourceMix::Cbr;
        grid.horizon = SimTime::from_secs(1);
        grid.warmup = SimDuration::from_millis(200);
        let plain_cell = grid.cells()[0];
        grid.telemetry = true;
        let cell = grid.cells()[0];
        assert!(cell.telemetry, "the grid flag reaches its cells");

        let outcome = cell.simulate();
        let CellOutcome::Scatternet(_, Some(telemetry)) = &outcome else {
            panic!("observed scatternet cells carry telemetry");
        };
        assert!(telemetry.events_processed > 0);
        assert!(telemetry.phases_run > 0);
        assert!(telemetry.phase_width_ns.count > 0);

        // The telemetry object round-trips exactly.
        let json = telemetry_to_json(telemetry);
        let parsed = telemetry_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, **telemetry);

        // It rides the cell frame as an optional field…
        let frame_json = frame_to_json(grid_digest(&grid), 0, &cell, &outcome);
        let frame = frame_from_json(&frame_json).unwrap();
        let CellOutcome::Scatternet(_, Some(shipped)) = &frame.outcome else {
            panic!("the frame dropped its telemetry");
        };
        assert_eq!(*shipped, *telemetry);

        // …and the observed cell's measured report is byte-identical to
        // the unobserved run of the same coordinates.
        let plain = btgs_core::GridReport {
            cells: vec![plain_cell.run()],
        };
        let observed = btgs_core::GridReport {
            cells: vec![btgs_core::CellResult::reassemble(cell, frame.outcome)],
        };
        assert_eq!(plain.digest(), observed.digest());
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(frame_from_json("{}").is_err());
        assert!(frame_from_json("not json").is_err());
        // Wrong version.
        assert!(frame_from_json(r#"{"v":2,"grid":1,"index":0}"#).is_err());
        // Both outcomes at once.
        let err =
            frame_from_json(r#"{"v":1,"grid":1,"index":0,"cell":{},"piconet":{},"scatternet":{}}"#)
                .unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn framing_detects_torn_tails() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "{\"b\":2}").unwrap();
        let complete = buf.len() as u64;
        // A torn third frame: prefix promises more bytes than exist.
        buf.extend_from_slice(b"999\n{\"c\":");
        let mut reader = FrameReader::new(Cursor::new(&buf));
        assert_eq!(
            reader.next_frame().unwrap(),
            FrameRead::Frame("{\"a\":1}".into())
        );
        assert_eq!(
            reader.next_frame().unwrap(),
            FrameRead::Frame("{\"b\":2}".into())
        );
        assert_eq!(reader.next_frame().unwrap(), FrameRead::Torn);
        assert_eq!(reader.consumed(), complete);

        // Clean EOF after complete frames.
        let mut reader = FrameReader::new(Cursor::new(&buf[..complete as usize]));
        let _ = reader.next_frame().unwrap();
        let _ = reader.next_frame().unwrap();
        assert_eq!(reader.next_frame().unwrap(), FrameRead::Eof);

        // Garbage prefix is torn, not a parse panic.
        let mut reader = FrameReader::new(Cursor::new(b"xyz\n{}".as_slice()));
        assert_eq!(reader.next_frame().unwrap(), FrameRead::Torn);
        // Absurd length prefix is torn, not an allocation attempt.
        let mut reader = FrameReader::new(Cursor::new(b"99999999999\n".as_slice()));
        assert_eq!(reader.next_frame().unwrap(), FrameRead::Torn);
    }

    #[test]
    fn flow_spec_with_allowed_types_round_trips() {
        let spec = FlowSpec::new(
            FlowId(9),
            AmAddr::new(4).unwrap(),
            Direction::MasterToSlave,
            LogicalChannel::BestEffort,
        )
        .with_allowed_types(vec![PacketType::Dh1, PacketType::Dm3]);
        let json = flow_spec_to_json(&spec);
        let parsed = flow_spec_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
