//! The worker side of the sharded protocol (the `grid_worker` binary is
//! a thin wrapper around [`run_worker`]).

use crate::wire::{frame_to_json, grid_digest, shard_spec_from_json, write_frame};
use crate::GridError;
use std::io::Write;

/// Test-only fault injection, wired through environment variables by the
/// `grid_worker` binary so the crash-recovery tests can kill a worker
/// mid-shard deterministically.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultInjection {
    /// Abort (exit non-zero) after completing this many cells.
    pub crash_after_cells: Option<usize>,
    /// When crashing, first emit a torn (half-written) frame — the
    /// signature of a process killed mid-write.
    pub torn_frame: bool,
}

/// Runs one shard: parses the spec JSON, simulates each listed cell, and
/// writes one length-prefixed frame per cell to `out` (flushing after
/// each, so the parent streams results as they complete).
///
/// Returns the number of cells executed.
///
/// # Errors
///
/// * [`GridError::InvalidGrid`] for malformed specs or grids,
/// * [`GridError::Worker`] when fault injection requests a crash,
/// * [`GridError::Io`] on write failures.
pub fn run_worker(
    spec_json: &str,
    out: &mut dyn Write,
    fault: &FaultInjection,
) -> Result<usize, GridError> {
    let spec =
        shard_spec_from_json(spec_json).map_err(|e| GridError::InvalidGrid(e.to_string()))?;
    spec.grid.validate().map_err(GridError::InvalidGrid)?;
    let digest = grid_digest(&spec.grid);
    let cells = spec.grid.cells();
    for (done, &index) in spec.cells.iter().enumerate() {
        if fault.crash_after_cells == Some(done) {
            if fault.torn_frame {
                // Half a frame: a length prefix promising more bytes than
                // follow, then death.
                let _ = out.write_all(b"100000\n{\"v\":1,\"grid\":");
                let _ = out.flush();
            }
            return Err(GridError::Worker(format!(
                "fault injection: crashing after {done} cells"
            )));
        }
        let cell = cells.get(index).ok_or_else(|| {
            GridError::InvalidGrid(format!(
                "shard names cell {index}, but the grid has {}",
                cells.len()
            ))
        })?;
        let outcome = cell.simulate();
        let payload = frame_to_json(digest, index, cell, &outcome);
        write_frame(out, &payload)?;
        out.flush()?;
    }
    Ok(spec.cells.len())
}

/// Reads [`FaultInjection`] from `BTGS_GRID_CRASH_AFTER_CELLS` /
/// `BTGS_GRID_CRASH_TORN` (used by the crash-recovery tests; absent in
/// normal operation).
pub fn fault_injection_from_env() -> FaultInjection {
    FaultInjection {
        // analyze: allow(ambient-env): crash-test fault injection, read
        // once at worker startup; absent in normal operation and never on
        // a simulation or report path.
        crash_after_cells: std::env::var("BTGS_GRID_CRASH_AFTER_CELLS")
            .ok()
            .and_then(|v| v.parse().ok()),
        // analyze: allow(ambient-env): same crash-test injection as above.
        torn_frame: std::env::var("BTGS_GRID_CRASH_TORN").is_ok_and(|v| v == "1"),
    }
}
