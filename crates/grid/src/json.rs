//! A minimal, dependency-free JSON reader for the grid wire format.
//!
//! The workspace builds fully offline, so `serde_json` is unavailable;
//! this module provides the small subset the wire format needs. Two
//! properties matter more than generality:
//!
//! * **Integer exactness** — timestamps, byte counts and seeds are `u64`
//!   (sums `u128`); parsing them through `f64` would silently corrupt
//!   values above 2⁵³. Numbers without a fraction or exponent therefore
//!   parse into [`Json::Int`] (`i128`), and only the rest into
//!   [`Json::Float`].
//! * **Round-tripping floats** — the writers format `f64`s with `{:?}`
//!   (Rust's shortest-round-trip representation), so
//!   `parse(write(x)) == x` bit-for-bit for every finite float.
//!
//! Writing happens directly with `format!` in `wire`; only escaping
//! ([`escape`]) lives here so both sides agree on it.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction/exponent part, kept exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth accepted by the parser (frames are shallow; the
/// cap only guards against stack exhaustion on corrupt input).
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses one JSON document; trailing whitespace is allowed, trailing
    /// content is an error.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is a non-negative integer in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an exact `u128`, if it is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Int(i) => u128::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            what: what.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if integral {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|e| self.err(format!("bad integer {text:?}: {e}")))
        } else {
            let f: f64 = text
                .parse()
                .map_err(|e| self.err(format!("bad number {text:?}: {e}")))?;
            if !f.is_finite() {
                return Err(self.err(format!("non-finite number {text:?}")));
            }
            Ok(Json::Float(f))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| self.err("bad unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("bad unicode escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_integers_stay_exact() {
        let v = Json::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // 2^53 + 1 is not representable in f64 — must stay exact.
        let tricky = (1u64 << 53) + 1;
        assert_eq!(
            Json::parse(&tricky.to_string()).unwrap().as_u64(),
            Some(tricky)
        );
        // u128 sums too.
        let big = u128::from(u64::MAX) * 3;
        assert_eq!(Json::parse(&big.to_string()).unwrap().as_u128(), Some(big));
    }

    #[test]
    fn floats_round_trip_via_debug_format() {
        for f in [1.0f64, 0.1, 1.75, 41.6e3, f64::MIN_POSITIVE, 1e300] {
            let text = format!("{f:?}");
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(f), "{text}");
        }
    }

    #[test]
    fn containers_and_lookup() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x", "a": 9}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
        // Duplicate keys: first wins.
        assert_eq!(v.get("a").unwrap().as_arr().map(<[Json]>::len), Some(3));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1F600}\u{7}";
        let text = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(original));
        // Surrogate pair escapes decode.
        assert_eq!(Json::parse(r#""😀""#).unwrap().as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["", "{", "[1,", "\"x", "tru", "1.2.3", "[1] x", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
        // Lone surrogate is rejected.
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn depth_is_capped() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }
}
