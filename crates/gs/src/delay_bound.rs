//! The RFC 2212 end-to-end delay bound (the paper's Eq. 1) and its inverse.

use crate::error_terms::ErrorTerms;
use btgs_des::SimDuration;
use btgs_traffic::TokenBucketSpec;
use core::fmt;

/// Errors from the delay-bound computations.
#[derive(Clone, Debug, PartialEq)]
pub enum GsError {
    /// The requested rate is below the flow's token rate `r`; the
    /// Guaranteed Service requires `R >= r`.
    RateBelowTokenRate {
        /// The offending requested rate (bytes/s).
        requested: f64,
        /// The flow's token rate (bytes/s).
        token_rate: f64,
    },
    /// The requested delay bound cannot be met at any finite rate because it
    /// does not exceed the rate-independent deviation `Dtot`.
    DelayBelowDtot {
        /// The requested bound.
        requested: SimDuration,
        /// The path's rate-independent deviation.
        dtot: SimDuration,
    },
}

impl fmt::Display for GsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GsError::RateBelowTokenRate {
                requested,
                token_rate,
            } => write!(
                f,
                "requested rate {requested} B/s is below the token rate {token_rate} B/s"
            ),
            GsError::DelayBelowDtot { requested, dtot } => write!(
                f,
                "requested delay bound {requested} does not exceed the path Dtot {dtot}"
            ),
        }
    }
}

impl std::error::Error for GsError {}

/// Computes the RFC 2212 end-to-end queueing delay bound (the paper's
/// Eq. 1) for a flow described by `tspec`, served at fluid rate
/// `rate` bytes/s over a path with accumulated deviations `terms`.
///
/// ```text
/// p > R >= r:  D = (b-M)/R * (p-R)/(p-r) + (M + Ctot)/R + Dtot
/// R >= p >= r: D = (M + Ctot)/R + Dtot
/// ```
///
/// # Errors
///
/// Returns [`GsError::RateBelowTokenRate`] if `rate < r`.
///
/// # Examples
///
/// The paper's evaluation numbers: `M = 176 B`, `Ctot = 144 B`,
/// `Dtot = 11.25 ms`, `R = r = 8800 B/s` gives the never-exceeded bound
/// `320/8800 s + 11.25 ms ≈ 47.6 ms`:
///
/// ```
/// use btgs_des::SimDuration;
/// use btgs_gs::{delay_bound, ErrorTerms};
/// use btgs_traffic::TokenBucketSpec;
///
/// let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
/// let terms = ErrorTerms::new(144.0, SimDuration::from_micros(11_250));
/// let bound = delay_bound(&tspec, 8800.0, terms).unwrap();
/// assert_eq!(bound.as_micros(), 47_613); // 36.36 ms + 11.25 ms
/// # Ok::<(), btgs_traffic::InvalidTSpec>(())
/// ```
pub fn delay_bound(
    tspec: &TokenBucketSpec,
    rate: f64,
    terms: ErrorTerms,
) -> Result<SimDuration, GsError> {
    let r = tspec.token_rate();
    let p = tspec.peak_rate();
    let b = tspec.bucket_depth();
    let m_big = tspec.max_packet() as f64;
    if rate < r {
        return Err(GsError::RateBelowTokenRate {
            requested: rate,
            token_rate: r,
        });
    }
    let fixed = (m_big + terms.c_bytes()) / rate;
    let queueing = if p > rate {
        // p > R >= r: the burst term applies.
        (b - m_big) / rate * (p - rate) / (p - r) + fixed
    } else {
        // R >= p >= r.
        fixed
    };
    Ok(SimDuration::from_secs_f64(queueing) + terms.d())
}

/// Computes the minimum fluid rate `R` (bytes/s) whose [`delay_bound`] does
/// not exceed `target` — the computation a GS receiver performs to turn a
/// desired delay bound into a rate request.
///
/// The returned rate is never below the token rate `r` (requesting less
/// than `r` is not allowed, and `r` already meets any bound that loose).
///
/// The inversion is **guaranteed conservative at nanosecond resolution**:
/// `delay_bound(tspec, required_rate(tspec, target, terms), terms) <=
/// target` holds exactly, never merely up to a rounding tolerance. The
/// closed-form solution lands on the real-valued boundary, where the
/// float-to-nanosecond conversion inside [`delay_bound`] may round either
/// way; rounding *up* there would overstate the delay by under a
/// nanosecond — an *optimistic* grant, since the admitted rate would not
/// actually meet the advertised bound. The rate is therefore bumped by the
/// smallest factor that restores the invariant before it is returned.
///
/// # Errors
///
/// Returns [`GsError::DelayBelowDtot`] if `target <= Dtot` (no finite rate
/// can meet it).
///
/// # Examples
///
/// ```
/// use btgs_des::SimDuration;
/// use btgs_gs::{delay_bound, required_rate, ErrorTerms};
/// use btgs_traffic::TokenBucketSpec;
///
/// let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
/// let terms = ErrorTerms::new(144.0, SimDuration::from_micros(11_250));
/// let target = SimDuration::from_micros(36_250);
/// let rate = required_rate(&tspec, target, terms).unwrap();
/// assert!((rate - 12_800.0).abs() < 1e-6); // the paper's R_max
/// assert!(delay_bound(&tspec, rate, terms).unwrap() <= target);
/// # Ok::<(), btgs_traffic::InvalidTSpec>(())
/// ```
pub fn required_rate(
    tspec: &TokenBucketSpec,
    target: SimDuration,
    terms: ErrorTerms,
) -> Result<f64, GsError> {
    let r = tspec.token_rate();
    let p = tspec.peak_rate();
    let b = tspec.bucket_depth();
    let m_big = tspec.max_packet() as f64;
    if target <= terms.d() {
        return Err(GsError::DelayBelowDtot {
            requested: target,
            dtot: terms.d(),
        });
    }
    // Queueing budget once the rate-independent part is spent.
    let q = (target - terms.d()).as_secs_f64();
    let mc = m_big + terms.c_bytes();

    // Try the high-rate branch first: R >= p, bound = (M + Ctot)/R.
    let r_high = mc / q;
    if r_high >= p {
        return Ok(seal_rate(tspec, target, terms, r_high.max(r)));
    }
    // Otherwise the solution (if any beyond r) lies in r <= R < p:
    //   (b-M)/(p-r) * (p-R)/R + (M+C)/R = q
    // Writing A = (b-M)/(p-r):  R = (A*p + M + C) / (q + A).
    let rate = if p > r {
        let a = (b - m_big) / (p - r);
        let r_low = (a * p + mc) / (q + a);
        r_low.max(r)
    } else {
        // p == r: only R >= p is admissible, and r_high < p means the token
        // rate itself already satisfies the bound.
        r
    };
    Ok(seal_rate(tspec, target, terms, rate))
}

/// Restores `delay_bound(rate) <= target` when the closed-form rate sits on
/// the boundary and nanosecond rounding tipped the bound one step past the
/// target. Only sub-nanosecond rounding slack ever needs repair (the
/// real-valued solution meets the target by construction, and clamping to
/// `r` only happens for targets the token rate already satisfies), so the
/// rate grows one relative epsilon at a time (doubling, so the loop
/// terminates in a handful of steps) until the invariant holds.
fn seal_rate(tspec: &TokenBucketSpec, target: SimDuration, terms: ErrorTerms, rate: f64) -> f64 {
    let exact = delay_bound(tspec, rate, terms).expect("rate is at least the token rate");
    if exact <= target {
        return rate;
    }
    let mut eps = f64::EPSILON;
    loop {
        let bumped = rate * (1.0 + eps);
        if delay_bound(tspec, bumped, terms).expect("bumped rate exceeds the token rate") <= target
        {
            return bumped;
        }
        eps *= 2.0;
        assert!(
            eps < 1e-6,
            "rounding repair diverged: rate {rate} cannot reach {target}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tspec() -> TokenBucketSpec {
        TokenBucketSpec::for_cbr(0.020, 144, 176).unwrap()
    }

    fn paper_terms() -> ErrorTerms {
        ErrorTerms::new(144.0, SimDuration::from_micros(11_250))
    }

    #[test]
    fn rejects_rate_below_token_rate() {
        let err = delay_bound(&paper_tspec(), 8000.0, paper_terms()).unwrap_err();
        assert!(matches!(err, GsError::RateBelowTokenRate { .. }));
        assert!(err.to_string().contains("8000"));
    }

    #[test]
    fn paper_dmax_at_token_rate() {
        // Substituting R = r in Eq. 1: (176+144)/8800 + 11.25 ms = 47.61 ms.
        let bound = delay_bound(&paper_tspec(), 8800.0, paper_terms()).unwrap();
        let expect = SimDuration::from_secs_f64(320.0 / 8800.0) + SimDuration::from_micros(11_250);
        assert_eq!(bound, expect);
        assert_eq!(bound.as_millis(), 47);
    }

    #[test]
    fn paper_dmin_at_max_rate() {
        // R_max = 12.8 kB/s gives 25 ms + 11.25 ms = 36.25 ms.
        let bound = delay_bound(&paper_tspec(), 12_800.0, paper_terms()).unwrap();
        assert_eq!(bound, SimDuration::from_micros(36_250));
    }

    #[test]
    fn bound_is_monotone_decreasing_in_rate() {
        let tspec = paper_tspec();
        let terms = paper_terms();
        let mut last = SimDuration::MAX;
        for rate in [8800.0, 9600.0, 11_000.0, 12_800.0, 20_000.0, 100_000.0] {
            let b = delay_bound(&tspec, rate, terms).unwrap();
            assert!(b <= last, "bound must not increase with rate");
            last = b;
        }
    }

    #[test]
    fn bound_approaches_dtot_at_infinite_rate() {
        let b = delay_bound(&paper_tspec(), 1e12, paper_terms()).unwrap();
        assert!(b - paper_terms().d() < SimDuration::from_nanos(1_000));
    }

    #[test]
    fn bursty_flow_uses_the_slope_term() {
        // p > R: a bursty flow (b >> M) at modest rate.
        let tspec = TokenBucketSpec::new(20_000.0, 5_000.0, 2_000.0, 100, 500).unwrap();
        let terms = ErrorTerms::ZERO;
        let bound_low = delay_bound(&tspec, 6_000.0, terms).unwrap();
        // By hand: (2000-500)/6000 * (20000-6000)/(20000-5000) + 500/6000
        let by_hand = 1500.0 / 6000.0 * (14_000.0 / 15_000.0) + 500.0 / 6000.0;
        assert_eq!(bound_low, SimDuration::from_secs_f64(by_hand));
        // And the burst term vanishes once R >= p.
        let bound_high = delay_bound(&tspec, 20_000.0, terms).unwrap();
        assert_eq!(bound_high, SimDuration::from_secs_f64(500.0 / 20_000.0));
    }

    #[test]
    fn required_rate_inverts_bound_high_branch() {
        let tspec = paper_tspec();
        let terms = paper_terms();
        for target_us in [36_250u64, 40_000, 45_000, 47_000] {
            let target = SimDuration::from_micros(target_us);
            let rate = required_rate(&tspec, target, terms).unwrap();
            let achieved = delay_bound(&tspec, rate, terms).unwrap();
            assert!(
                achieved <= target + SimDuration::from_nanos(1),
                "target {target}: rate {rate} gives {achieved}"
            );
            // Minimality: 1% less rate (if still >= r) must violate.
            let lower = rate * 0.99;
            if lower >= tspec.token_rate() && rate > tspec.token_rate() {
                let worse = delay_bound(&tspec, lower, terms).unwrap();
                assert!(worse > target, "rate was not minimal");
            }
        }
    }

    #[test]
    fn required_rate_clamps_to_token_rate_for_loose_bounds() {
        let rate = required_rate(&paper_tspec(), SimDuration::from_secs(1), paper_terms()).unwrap();
        assert_eq!(rate, 8800.0);
    }

    #[test]
    fn required_rate_rejects_unreachable_targets() {
        let err = required_rate(
            &paper_tspec(),
            SimDuration::from_micros(11_250),
            paper_terms(),
        )
        .unwrap_err();
        assert!(matches!(err, GsError::DelayBelowDtot { .. }));
    }

    #[test]
    fn required_rate_inverts_bound_low_branch() {
        // A flow with p > r so the burst branch is exercised.
        let tspec = TokenBucketSpec::new(20_000.0, 5_000.0, 2_000.0, 100, 500).unwrap();
        let terms = ErrorTerms::new(50.0, SimDuration::from_millis(2));
        // Pick a target met somewhere in r < R < p.
        let target = delay_bound(&tspec, 8_000.0, terms).unwrap();
        let rate = required_rate(&tspec, target, terms).unwrap();
        assert!((rate - 8_000.0).abs() < 1e-6, "got {rate}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;

    /// required_rate must invert delay_bound: the returned rate meets
    /// the target, and (when above r) shaving 1% off violates it.
    #[test]
    fn inversion_round_trip() {
        let mut rng = DetRng::seed_from_u64(0x65B1);
        for _ in 0..512 {
            let p_extra = rng.next_f64() * 20_000.0;
            let r = 1_000.0 + rng.next_f64() * 19_000.0;
            let b_extra = rng.next_f64() * 5_000.0;
            let m_small = rng.range_inclusive(32, 199) as u32;
            let m_extra = rng.below(400) as u32;
            let c = rng.next_f64() * 500.0;
            let d_us = rng.below(20_000);
            let target_extra_us = rng.range_inclusive(1, 199_999);
            let m_big = m_small + m_extra;
            let tspec =
                TokenBucketSpec::new(r + p_extra, r, m_big as f64 + b_extra, m_small, m_big)
                    .unwrap();
            let terms = ErrorTerms::new(c, SimDuration::from_micros(d_us));
            let target = terms.d() + SimDuration::from_micros(target_extra_us);
            let rate = required_rate(&tspec, target, terms).unwrap();
            assert!(rate >= tspec.token_rate());
            let achieved = delay_bound(&tspec, rate, terms).unwrap();
            assert!(
                achieved <= target + SimDuration::from_nanos(10),
                "rate {rate} gives {achieved} > {target}"
            );
            if rate * 0.99 >= tspec.token_rate() {
                let worse = delay_bound(&tspec, rate * 0.99, terms).unwrap();
                assert!(
                    worse + SimDuration::from_nanos(10) >= target,
                    "rate {rate} not minimal: {worse} still <= {target}"
                );
            }
        }
    }

    /// The inversion is conservative with **no** rounding tolerance:
    /// `delay_bound(required_rate(D)) <= D` exactly, for randomized
    /// TSpecs, error terms, and targets. A truncated/rounded conversion
    /// that tips the recomputed bound even one nanosecond past the target
    /// would make the admission optimistic — this property pins the
    /// rounding direction at every truncation site on the path.
    #[test]
    fn inversion_is_exactly_conservative() {
        let mut rng = DetRng::seed_from_u64(0x5EA1);
        for _ in 0..2048 {
            let p_extra = rng.next_f64() * 20_000.0;
            let r = 1_000.0 + rng.next_f64() * 19_000.0;
            let b_extra = rng.next_f64() * 5_000.0;
            let m_small = rng.range_inclusive(32, 199) as u32;
            let m_extra = rng.below(400) as u32;
            let c = rng.next_f64() * 500.0;
            let d_us = rng.below(20_000);
            let target_extra_ns = rng.range_inclusive(1, 199_999_999);
            let m_big = m_small + m_extra;
            let tspec =
                TokenBucketSpec::new(r + p_extra, r, m_big as f64 + b_extra, m_small, m_big)
                    .unwrap();
            let terms = ErrorTerms::new(c, SimDuration::from_micros(d_us));
            let target = terms.d() + SimDuration::from_nanos(target_extra_ns);
            let rate = required_rate(&tspec, target, terms).unwrap();
            assert!(rate >= tspec.token_rate());
            let achieved = delay_bound(&tspec, rate, terms).unwrap();
            assert!(
                achieved <= target,
                "optimistic inversion: rate {rate} gives {achieved} > {target}"
            );
        }
    }

    /// The bound decreases (weakly) as the rate grows.
    #[test]
    fn monotonicity() {
        let mut rng = DetRng::seed_from_u64(0x65B2);
        for _ in 0..512 {
            let r = 1_000.0 + rng.next_f64() * 19_000.0;
            let p_extra = rng.next_f64() * 20_000.0;
            let rate1_frac = rng.next_f64();
            let rate2_frac = rng.next_f64();
            let tspec = TokenBucketSpec::new(r + p_extra, r, 1_000.0, 100, 500).unwrap();
            let terms = ErrorTerms::new(144.0, SimDuration::from_millis(3));
            let lo = r;
            let hi = 4.0 * (r + p_extra);
            let rate1 = lo + (hi - lo) * rate1_frac;
            let rate2 = lo + (hi - lo) * rate2_frac;
            let b1 = delay_bound(&tspec, rate1, terms).unwrap();
            let b2 = delay_bound(&tspec, rate2, terms).unwrap();
            if rate1 <= rate2 {
                assert!(b1 + SimDuration::from_nanos(1) >= b2);
            } else {
                assert!(b2 + SimDuration::from_nanos(1) >= b1);
            }
        }
    }
}
