//! Multi-hop composition of Guaranteed Service delay bounds.
//!
//! A cross-piconet chain delivers a packet through a sequence of per-hop
//! polling systems joined by bridge rendezvous crossings. Each hop carries
//! its own RFC 2212 bound ([`delay_bound`](crate::delay_bound) with that
//! hop's exported terms); each crossing adds a *residence* term — the wait
//! for the bridge to reappear in the target piconet. The end-to-end bound
//! is the plain sum
//!
//! ```text
//! D_e2e = Σ_h B_h + Σ_x R_x
//! ```
//!
//! because hops hand packets over instantaneously (master relays) or at
//! the rendezvous instant (bridge crossings): no delay term is shared
//! between stages, so the per-stage worst cases compose additively.
//!
//! This module holds the technology-independent pieces of that
//! composition: the worst-case residence of a periodic rendezvous
//! schedule, the additive composition itself, and the inverse — splitting
//! an end-to-end deadline into per-hop queueing budgets. The
//! Bluetooth-specific chain admission (which piconet grants which rate)
//! lives in `btgs-core`.

use btgs_des::SimDuration;

/// The worst-case residence of one bridge crossing, derived from the
/// *target* piconet's presence schedule: within every `cycle` the bridge
/// is reachable in the target piconet for a window of `dwell`; a packet
/// delivered to the bridge just after that window ends waits the maximum
/// gap
///
/// ```text
/// residence ≤ cycle − dwell + guard
/// ```
///
/// `guard` absorbs schedule slack the caller wants to budget on top of
/// the pure gap (e.g. a slot pair of alignment slack for hand-built,
/// non-complementary schedules); derived two-window bridge schedules need
/// none ([`SimDuration::ZERO`]).
///
/// # Panics
///
/// Panics if `dwell` is zero or exceeds `cycle` (no valid rendezvous
/// schedule has an empty or overlong target window).
///
/// # Examples
///
/// The scatternet scenario's default bridge — a 20 ms cycle split evenly —
/// bounds every crossing by 10 ms:
///
/// ```
/// use btgs_des::SimDuration;
/// use btgs_gs::worst_case_residence;
///
/// let cycle = SimDuration::from_millis(20);
/// let dwell = SimDuration::from_millis(10);
/// assert_eq!(
///     worst_case_residence(cycle, dwell, SimDuration::ZERO),
///     SimDuration::from_millis(10),
/// );
/// ```
pub fn worst_case_residence(
    cycle: SimDuration,
    dwell: SimDuration,
    guard: SimDuration,
) -> SimDuration {
    assert!(!dwell.is_zero(), "target dwell must be positive");
    assert!(
        dwell <= cycle,
        "target dwell {dwell} exceeds the rendezvous cycle {cycle}"
    );
    cycle - dwell + guard
}

/// The worst-case extra polling delay a *part-time* (bridge) slave adds to
/// its own hop: a poll falling due the instant the slave leaves waits out
/// the absence gap before it can execute, so the hop's rate-independent
/// deviation grows by `cycle − dwell` (`dwell` being the slave's presence
/// window in the hop's piconet). Full-time slaves add nothing.
///
/// Numerically identical to [`worst_case_residence`] with zero guard; the
/// separate name keeps call sites honest about *which* window they pass —
/// residence uses the **target** piconet's window, absence the **hop's
/// own**.
///
/// # Panics
///
/// See [`worst_case_residence`].
pub fn presence_absence_penalty(cycle: SimDuration, dwell: SimDuration) -> SimDuration {
    worst_case_residence(cycle, dwell, SimDuration::ZERO)
}

/// Composes per-hop delay bounds and per-crossing residences into the
/// provable end-to-end bound `Σ hop bounds + Σ residences`.
///
/// # Panics
///
/// Panics if `hop_bounds` is empty (a chain has at least one hop) or the
/// sum overflows the nanosecond representation.
///
/// # Examples
///
/// ```
/// use btgs_des::SimDuration;
/// use btgs_gs::compose_e2e_bound;
///
/// let hops = [SimDuration::from_millis(40), SimDuration::from_millis(35)];
/// let residences = [SimDuration::from_millis(10)];
/// assert_eq!(
///     compose_e2e_bound(&hops, &residences),
///     SimDuration::from_millis(85),
/// );
/// ```
pub fn compose_e2e_bound(hop_bounds: &[SimDuration], residences: &[SimDuration]) -> SimDuration {
    assert!(!hop_bounds.is_empty(), "a chain has at least one hop");
    hop_bounds
        .iter()
        .chain(residences.iter())
        .fold(SimDuration::ZERO, |acc, &d| acc + d)
}

/// Splits an end-to-end deadline into equal per-hop *queueing* budgets
/// after the fixed, rate-independent terms (residences, poll delays `y`,
/// absence penalties) are paid: returns `floor((deadline − fixed) / hops)`
/// per hop, or `None` when the fixed terms alone consume the deadline (no
/// finite per-hop rate can help — the chain must be rejected).
///
/// The division rounds **down**, so `hops × budget + fixed ≤ deadline`
/// always holds — the split can only make the composed bound tighter than
/// the deadline, never looser.
///
/// # Panics
///
/// Panics if `hops` is zero.
///
/// # Examples
///
/// ```
/// use btgs_des::SimDuration;
/// use btgs_gs::split_queueing_budget;
///
/// let deadline = SimDuration::from_millis(100);
/// let fixed = SimDuration::from_millis(55);
/// assert_eq!(
///     split_queueing_budget(deadline, fixed, 3),
///     Some(SimDuration::from_millis(15)),
/// );
/// assert_eq!(split_queueing_budget(deadline, deadline, 3), None);
/// ```
pub fn split_queueing_budget(
    deadline: SimDuration,
    fixed: SimDuration,
    hops: usize,
) -> Option<SimDuration> {
    assert!(hops > 0, "a chain has at least one hop");
    if deadline <= fixed {
        return None;
    }
    let budget = SimDuration::from_nanos((deadline - fixed).as_nanos() / hops as u64);
    if budget.is_zero() {
        // A sub-nanosecond per-hop budget is indistinguishable from none.
        return None;
    }
    Some(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn residence_is_the_cycle_gap() {
        assert_eq!(worst_case_residence(ms(20), ms(10), ms(0)), ms(10));
        assert_eq!(worst_case_residence(ms(20), ms(5), ms(0)), ms(15));
        // Guard adds on top.
        assert_eq!(
            worst_case_residence(ms(20), ms(10), SimDuration::from_micros(1_250)),
            SimDuration::from_micros(11_250)
        );
        // A full-cycle dwell leaves no gap.
        assert_eq!(worst_case_residence(ms(20), ms(20), ms(0)), ms(0));
    }

    #[test]
    #[should_panic(expected = "exceeds the rendezvous cycle")]
    fn residence_rejects_overlong_dwell() {
        let _ = worst_case_residence(ms(10), ms(20), ms(0));
    }

    #[test]
    #[should_panic(expected = "dwell must be positive")]
    fn residence_rejects_zero_dwell() {
        let _ = worst_case_residence(ms(10), ms(0), ms(0));
    }

    #[test]
    fn absence_penalty_mirrors_residence() {
        assert_eq!(presence_absence_penalty(ms(20), ms(10)), ms(10));
        assert_eq!(presence_absence_penalty(ms(20), ms(20)), ms(0));
    }

    #[test]
    fn composition_is_the_plain_sum() {
        assert_eq!(compose_e2e_bound(&[ms(40)], &[]), ms(40));
        assert_eq!(
            compose_e2e_bound(&[ms(40), ms(35), ms(30)], &[ms(10), ms(10)]),
            ms(125)
        );
    }

    #[test]
    fn split_is_conservative() {
        // 45 ms over 4 hops: 11.25 ms each, floor leaves headroom.
        let q = split_queueing_budget(ms(100), ms(55), 4).unwrap();
        assert_eq!(q, SimDuration::from_micros(11_250));
        assert!(q * 4 + ms(55) <= ms(100));
        // Non-divisible: floor.
        let q = split_queueing_budget(ms(100), ms(55), 7).unwrap();
        assert!(q * 7 + ms(55) <= ms(100));
        assert!((q + SimDuration::from_nanos(1)) * 7 + ms(55) > ms(100));
    }

    #[test]
    fn split_rejects_consumed_deadlines() {
        assert_eq!(split_queueing_budget(ms(50), ms(50), 2), None);
        assert_eq!(split_queueing_budget(ms(50), ms(60), 2), None);
        // Sub-nanosecond budgets collapse to rejection too.
        assert_eq!(
            split_queueing_budget(ms(50) + SimDuration::from_nanos(1), ms(50), 2),
            None
        );
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn split_rejects_zero_hops() {
        let _ = split_queueing_budget(ms(50), ms(10), 0);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn compose_rejects_empty_chains() {
        let _ = compose_e2e_bound(&[], &[ms(10)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use btgs_des::DetRng;

    /// For random deadlines and fixed terms, an equal split never overruns
    /// the deadline when recomposed: `hops × budget + fixed ≤ deadline`.
    #[test]
    fn split_then_compose_never_exceeds_the_deadline() {
        let mut rng = DetRng::seed_from_u64(0xC0117);
        for _ in 0..512 {
            let deadline = SimDuration::from_nanos(rng.range_inclusive(1, 500_000_000));
            let fixed = SimDuration::from_nanos(rng.below(600_000_000));
            let hops = rng.range_inclusive(1, 8) as usize;
            match split_queueing_budget(deadline, fixed, hops) {
                Some(q) => {
                    assert!(!q.is_zero());
                    let hop_bounds = vec![q; hops];
                    let composed = compose_e2e_bound(&hop_bounds, &[fixed]);
                    assert!(
                        composed <= deadline,
                        "{hops} × {q} + {fixed} = {composed} > {deadline}"
                    );
                }
                None => assert!(
                    deadline.as_nanos() < fixed.as_nanos() + hops as u64,
                    "rejected although {deadline} leaves a budget past {fixed}"
                ),
            }
        }
    }
}
