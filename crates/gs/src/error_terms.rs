//! Guaranteed Service error terms (C and D) and their path composition.

use btgs_des::SimDuration;
use core::fmt;

/// The deviation of one network element from the fluid model, as exported by
/// the Guaranteed Service (RFC 2212).
///
/// * `C` (bytes) — the **rate-dependent** deviation: it contributes `C/R`
///   seconds of extra queueing delay when the element serves the flow at
///   fluid rate `R`.
/// * `D` (time) — the **rate-independent** deviation.
///
/// For the paper's Bluetooth poller, `C_i = eta_min_i` (the minimum poll
/// efficiency in bytes, Eq. 7's rate-dependent term `eta_min_i / R_i = x_i`)
/// and `D_i = y_i` (the maximum poll delay).
///
/// # Examples
///
/// ```
/// use btgs_gs::ErrorTerms;
/// use btgs_des::SimDuration;
///
/// let poller = ErrorTerms::new(144.0, SimDuration::from_micros(11_250));
/// assert_eq!(poller.c_bytes(), 144.0);
/// assert_eq!(poller.d().as_micros(), 11_250);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ErrorTerms {
    c_bytes: f64,
    d: SimDuration,
}

impl ErrorTerms {
    /// The zero deviation (a perfect fluid server).
    pub const ZERO: ErrorTerms = ErrorTerms {
        c_bytes: 0.0,
        d: SimDuration::ZERO,
    };

    /// Creates error terms.
    ///
    /// # Panics
    ///
    /// Panics if `c_bytes` is negative or not finite.
    pub fn new(c_bytes: f64, d: SimDuration) -> ErrorTerms {
        assert!(
            c_bytes.is_finite() && c_bytes >= 0.0,
            "C term must be non-negative and finite, got {c_bytes}"
        );
        ErrorTerms { c_bytes, d }
    }

    /// The rate-dependent term `C` in bytes.
    pub fn c_bytes(&self) -> f64 {
        self.c_bytes
    }

    /// The rate-independent term `D`.
    pub fn d(&self) -> SimDuration {
        self.d
    }

    /// Accumulates another element's terms (the `Ctot`/`Dtot` sums of
    /// RFC 2212: terms add along the GS path).
    #[must_use]
    pub fn compose(self, next: ErrorTerms) -> ErrorTerms {
        ErrorTerms {
            c_bytes: self.c_bytes + next.c_bytes,
            d: self.d + next.d,
        }
    }

    /// Sums the terms of every element along a path.
    pub fn total<I: IntoIterator<Item = ErrorTerms>>(path: I) -> ErrorTerms {
        path.into_iter().fold(ErrorTerms::ZERO, ErrorTerms::compose)
    }
}

impl fmt::Display for ErrorTerms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C={} B, D={}", self.c_bytes, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_identity() {
        let e = ErrorTerms::new(100.0, SimDuration::from_millis(5));
        assert_eq!(ErrorTerms::ZERO.compose(e), e);
        assert_eq!(e.compose(ErrorTerms::ZERO), e);
    }

    #[test]
    fn composition_adds() {
        let a = ErrorTerms::new(144.0, SimDuration::from_micros(3_750));
        let b = ErrorTerms::new(56.0, SimDuration::from_micros(1_250));
        let c = a.compose(b);
        assert_eq!(c.c_bytes(), 200.0);
        assert_eq!(c.d(), SimDuration::from_micros(5_000));
    }

    #[test]
    fn total_over_path() {
        let path = vec![
            ErrorTerms::new(10.0, SimDuration::from_millis(1)),
            ErrorTerms::new(20.0, SimDuration::from_millis(2)),
            ErrorTerms::new(30.0, SimDuration::from_millis(3)),
        ];
        let tot = ErrorTerms::total(path);
        assert_eq!(tot.c_bytes(), 60.0);
        assert_eq!(tot.d(), SimDuration::from_millis(6));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_c_rejected() {
        let _ = ErrorTerms::new(-1.0, SimDuration::ZERO);
    }

    #[test]
    fn display() {
        let e = ErrorTerms::new(144.0, SimDuration::from_micros(11_250));
        assert_eq!(e.to_string(), "C=144 B, D=11.250ms");
    }
}
