//! # btgs-gs — the Guaranteed Service (RFC 2212) computations
//!
//! The generic (technology-independent) half of the paper's machinery, used
//! by the `btgs` reproduction of *"Providing Delay Guarantees in Bluetooth"*
//! (Ait Yaiz & Heijenk, ICDCSW'03):
//!
//! * [`ErrorTerms`] — per-element `C` (rate-dependent, bytes) and `D`
//!   (rate-independent, time) deviations from the fluid model, with path
//!   composition into `Ctot`/`Dtot`.
//! * [`delay_bound`] — the paper's Eq. 1: the end-to-end queueing delay
//!   bound for a token-bucket flow served at fluid rate `R`.
//! * [`required_rate`] — the receiver-side inverse: the smallest `R` that
//!   meets a desired bound.
//! * The `compose` helpers ([`worst_case_residence`], [`compose_e2e_bound`],
//!   [`split_queueing_budget`]) — multi-hop composition of per-hop bounds
//!   with bridge-residence terms, and the inverse deadline split.
//!
//! The Bluetooth-specific half — how a polling master *produces* its `C` and
//! `D` terms and admits flows — lives in `btgs-core`.
//!
//! # Examples
//!
//! End-to-end: pick a delay target, derive the rate to request, verify the
//! resulting bound (numbers from the paper's evaluation):
//!
//! ```
//! use btgs_des::SimDuration;
//! use btgs_gs::{delay_bound, required_rate, ErrorTerms};
//! use btgs_traffic::TokenBucketSpec;
//!
//! // 64 kbps voice-like flow: 144..176-byte packets every 20 ms.
//! let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
//! // The Bluetooth poller exports C = 144 B, D = 11.25 ms for this flow.
//! let terms = ErrorTerms::new(144.0, SimDuration::from_micros(11_250));
//!
//! let target = SimDuration::from_millis(40);
//! let rate = required_rate(&tspec, target, terms).unwrap();
//! assert!(delay_bound(&tspec, rate, terms).unwrap() <= target);
//! # Ok::<(), btgs_traffic::InvalidTSpec>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod delay_bound;
mod error_terms;

pub use compose::{
    compose_e2e_bound, presence_absence_penalty, split_queueing_budget, worst_case_residence,
};
pub use delay_bound::{delay_bound, required_rate, GsError};
pub use error_terms::ErrorTerms;

// Re-export the traffic-side types that form this crate's vocabulary, so
// downstream users need not name btgs-traffic for basic GS work.
pub use btgs_traffic::{InvalidTSpec, TokenBucketSpec};
