//! `btgs-obs` — export observability artifacts from the scatternet engine.
//!
//! ```text
//! cargo run --release -p btgs-obs -- --trace chain --out trace.json \
//!     [--telemetry telemetry.json] [--threads N] [--seconds N] [--fine]
//! cargo run --release -p btgs-obs -- --profile [--out BENCH_profile_breakdown.json] [--seconds N]
//! ```
//!
//! `--trace` runs one sanitizer-corpus scenario (`chain`, `ring` or
//! `mesh`) with the deterministic trace layer on and writes a
//! Chrome/Perfetto-loadable trace JSON (`chrome://tracing` or
//! <https://ui.perfetto.dev>); `--telemetry` additionally writes the
//! engine [`TelemetryReport`](btgs_piconet::TelemetryReport) as JSON
//! (the grid wire encoding). `--profile` runs the per-event cost
//! profiler table and writes `BENCH_profile_breakdown.json`.

#![forbid(unsafe_code)]

use btgs_core::{sanitizer_corpus, PollerKind, ScatternetScenario};
use btgs_des::SimTime;
use btgs_obs::{perfetto_trace_json, profile_breakdown, profile_breakdown_json};
use btgs_piconet::ObsConfig;
use std::process::ExitCode;

const USAGE: &str = "usage: btgs-obs --trace {chain|ring|mesh} --out PATH \
                     [--telemetry PATH] [--threads N] [--seconds N] [--fine]\n\
                     \x20      btgs-obs --profile [--out PATH] [--seconds N]";

struct Args {
    trace: Option<String>,
    profile: bool,
    out: Option<String>,
    telemetry: Option<String>,
    threads: usize,
    seconds: u64,
    fine: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        trace: None,
        profile: false,
        out: None,
        telemetry: None,
        threads: 1,
        seconds: 2,
        fine: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--trace" => args.trace = Some(value("--trace")?),
            "--profile" => args.profile = true,
            "--out" => args.out = Some(value("--out")?),
            "--telemetry" => args.telemetry = Some(value("--telemetry")?),
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--seconds" => {
                args.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--fine" => args.fine = true,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.profile == args.trace.is_some() {
        return Err(format!("pick exactly one of --trace / --profile\n{USAGE}"));
    }
    Ok(args)
}

fn run_trace(args: &Args) -> Result<(), String> {
    let label = args.trace.as_deref().expect("checked by parse_args");
    let out = args
        .out
        .as_deref()
        .ok_or_else(|| format!("--trace needs --out PATH\n{USAGE}"))?;
    let (_, params) = sanitizer_corpus()
        .into_iter()
        .find(|(l, _)| *l == label)
        .ok_or_else(|| format!("unknown corpus scenario {label} (chain|ring|mesh)"))?;
    let piconets = params.piconets as usize;
    let sim = ScatternetScenario::build(params)
        .simulator(PollerKind::PfpGs)
        .map_err(|e| format!("building {label}: {e}"))?
        .with_threads(args.threads);
    let cfg = ObsConfig {
        fine_events: args.fine,
        ..ObsConfig::default()
    };
    let run = sim
        .run_observed(SimTime::from_secs(args.seconds), cfg)
        .map_err(|e| format!("running {label}: {e}"))?;

    let json = perfetto_trace_json(&run.trace, piconets);
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "{label}: {} trace records ({} dropped), {} events -> {out}",
        run.trace.records.len(),
        run.trace.dropped,
        run.report.events_processed,
    );
    if let Some(path) = args.telemetry.as_deref() {
        let json = btgs_grid::wire::telemetry_to_json(&run.telemetry);
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("{label}: telemetry -> {path}");
    }
    Ok(())
}

fn run_profile(args: &Args) -> Result<(), String> {
    let out = args
        .out
        .as_deref()
        .unwrap_or("BENCH_profile_breakdown.json");
    let seconds = if args.seconds == 2 { 5 } else { args.seconds };
    let runs = profile_breakdown(seconds);
    let json = profile_breakdown_json(&btgs_bench::host::host_fingerprint(), seconds, &runs);
    std::fs::write(out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    for r in &runs {
        eprintln!(
            "{:<16} {:>9} ev  {:>7.2} ms cpu  {:>6.1} ns/ev",
            r.label,
            r.events,
            r.cpu_secs * 1e3,
            r.cpu_secs * 1e9 / r.events.max(1) as f64,
        );
    }
    eprintln!("profile -> {out}");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if args.profile {
        run_profile(&args)
    } else {
        run_trace(&args)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
