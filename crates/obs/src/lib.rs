//! The observability *harness*: everything that turns the simulation's
//! deterministic capture layer ([`btgs_piconet::EngineTrace`],
//! [`btgs_piconet::TelemetryReport`]) into artifacts a human can load —
//! and the only place besides `btgs-bench` where wall-clock reads are
//! allowed.
//!
//! Three exports:
//!
//! * [`perfetto_trace_json`] — renders a merged engine trace as Chrome /
//!   Perfetto trace-event JSON (`{"traceEvents": [...]}`): track 0 is
//!   the coordinator (phase slices, relay injections, widening and
//!   idle-skip instants), track *p + 1* is piconet *p* (island-claim
//!   slices, relay stagings and, with
//!   [`ObsConfig::fine_events`](btgs_piconet::ObsConfig), per-event
//!   instants). Timestamps are *sim-time* microseconds, so the exported
//!   bytes are as deterministic as the trace itself.
//!
//! * [`WallMeter`] — a [`btgs_piconet::EventMeter`] that attributes
//!   wall-clock nanoseconds to event kinds (one `Instant` pair around
//!   every island event), merged across islands into a
//!   [`KindBreakdown`].
//!
//! * [`profile_breakdown`] — the per-event cost profiler: runs a fixed
//!   scenario table single-threaded with one meter per island and
//!   renders the committed `BENCH_profile_breakdown.json`, replacing
//!   the retired `island_profile` dev bin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use btgs_core::{PollerKind, ScatternetScenario, ScatternetScenarioParams};
use btgs_des::SimTime;
use btgs_piconet::{
    EngineTrace, EventMeter, ObsConfig, TraceRecord, TraceRecordKind, EVENT_KIND_NAMES,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Upper bound on distinct event-kind tags a [`WallMeter`] can
/// attribute (the piconet event enum has five; headroom costs nothing).
pub const MAX_EVENT_KINDS: usize = 8;

/// Renders a merged [`EngineTrace`] as Chrome/Perfetto trace-event JSON.
///
/// `piconets` names the island tracks up front (`tid` metadata), so a
/// trace with quiet islands still shows every track. Timestamps (`ts`)
/// and durations (`dur`) are sim-time microseconds — integer division
/// of the record's nanoseconds, with spans clamped to at least 1 µs so
/// sub-microsecond slices stay visible.
pub fn perfetto_trace_json(trace: &EngineTrace, piconets: usize) -> String {
    let mut out = String::with_capacity(128 + 160 * trace.records.len());
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(s);
    };

    let mut meta = |tid: usize, name: &str, out: &mut String| {
        emit(
            &format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            out,
        );
    };
    meta(0, "coordinator", &mut out);
    for p in 0..piconets {
        meta(p + 1, &format!("island {p}"), &mut out);
    }

    for r in &trace.records {
        emit(&render_record(r), &mut out);
    }
    out.push_str("\n]}\n");
    out
}

fn render_record(r: &TraceRecord) -> String {
    let ts = r.start_ns / 1_000;
    let mut s = String::with_capacity(160);
    match r.kind {
        TraceRecordKind::Phase | TraceRecordKind::IslandRun => {
            let dur = ((r.end_ns - r.start_ns) / 1_000).max(1);
            let _ = write!(
                s,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":\"{}\",\"args\":{{{}}}}}",
                r.track,
                r.kind.name(),
                record_args(r),
            );
        }
        _ => {
            let name = if r.kind == TraceRecordKind::Event {
                EVENT_KIND_NAMES
                    .get(r.arg0 as usize)
                    .copied()
                    .unwrap_or("event")
            } else {
                r.kind.name()
            };
            let _ = write!(
                s,
                "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{ts},\"s\":\"t\",\
                 \"name\":\"{name}\",\"args\":{{{}}}}}",
                r.track,
                record_args(r),
            );
        }
    }
    s
}

/// The `args` object body for one record, with kind-specific key names
/// (see the [`TraceRecordKind`] per-variant docs).
fn record_args(r: &TraceRecord) -> String {
    match r.kind {
        TraceRecordKind::Phase => {
            format!("\"islands_run\":{},\"relay_pool\":{}", r.arg0, r.arg1)
        }
        TraceRecordKind::IslandRun => {
            format!("\"events\":{},\"wheel_live\":{}", r.arg0, r.arg1)
        }
        TraceRecordKind::RelayStage | TraceRecordKind::RelayInject => {
            format!("\"target\":{},\"seq\":{}", r.arg0, r.arg1)
        }
        TraceRecordKind::WideningStretch => String::new(),
        TraceRecordKind::IdleSkip => format!("\"skipped\":{}", r.arg0),
        TraceRecordKind::Event => format!("\"kind\":{},\"arg\":{}", r.arg0, r.arg1),
    }
}

/// A wall-clock per-event cost meter: one [`Instant`] pair around every
/// island event, attributed to the event's kind tag. Fixed-size, so
/// metering never allocates (the zero-allocation gate brackets it).
#[derive(Debug, Default)]
pub struct WallMeter {
    begun: Option<Instant>,
    /// Events metered, by kind tag.
    pub counts: [u64; MAX_EVENT_KINDS],
    /// Wall nanoseconds attributed, by kind tag.
    pub nanos: [u64; MAX_EVENT_KINDS],
}

impl WallMeter {
    /// A fresh meter (all buckets zero).
    pub fn new() -> WallMeter {
        WallMeter::default()
    }

    /// Folds another meter's buckets into this one.
    pub fn merge(&mut self, other: &WallMeter) {
        for k in 0..MAX_EVENT_KINDS {
            self.counts[k] += other.counts[k];
            self.nanos[k] += other.nanos[k];
        }
    }

    /// Total events metered.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total nanoseconds attributed.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

impl EventMeter for WallMeter {
    fn begin(&mut self) {
        self.begun = Some(Instant::now());
    }

    fn end(&mut self, tag: u8) {
        if let Some(t0) = self.begun.take() {
            let k = (tag as usize).min(MAX_EVENT_KINDS - 1);
            self.counts[k] += 1;
            self.nanos[k] += t0.elapsed().as_nanos() as u64;
        }
    }

    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
}

/// The merged per-kind attribution of one profiled scenario.
#[derive(Debug)]
pub struct KindBreakdown {
    /// The scenario's table label.
    pub label: &'static str,
    /// Events the report counted (the ns/event denominator).
    pub events: u64,
    /// Process CPU seconds consumed by the run (utime + stime).
    pub cpu_secs: f64,
    /// The merged meter (per-kind counts and wall nanoseconds).
    pub meter: WallMeter,
}

/// The profiler's scenario table: the trajectory's headline chained
/// cases (the sub-150 ns/event lever) plus one mesh, all
/// single-threaded so handler cost is not hidden behind parallelism.
fn profile_table() -> Vec<(&'static str, ScatternetScenarioParams)> {
    vec![
        ("chained2-20ms", ScatternetScenarioParams::chained(2)),
        ("chained16-20ms", ScatternetScenarioParams::chained(16)),
        ("mesh16", ScatternetScenarioParams::mesh(16, 2, 7)),
    ]
}

/// Runs the profiler table and collects per-kind breakdowns.
///
/// Each scenario runs once to `seconds` of sim-time at one thread with
/// a [`WallMeter`] per island; the meters are merged after the run.
///
/// # Panics
///
/// Panics if a table scenario fails to build or run — the table is
/// fixed and a failure is a bug, not an input error.
pub fn profile_breakdown(seconds: u64) -> Vec<KindBreakdown> {
    profile_table()
        .into_iter()
        .map(|(label, params)| {
            let piconets = params.piconets as usize;
            let sim = ScatternetScenario::build(params)
                .simulator(PollerKind::PfpGs)
                .expect("profiler table scenario builds")
                .with_threads(1);
            let meters: Vec<Box<dyn EventMeter>> = (0..piconets)
                .map(|_| Box::new(WallMeter::new()) as Box<dyn EventMeter>)
                .collect();
            let horizon = SimTime::from_secs(seconds);
            let cpu0 = btgs_bench::host::cpu_secs();
            let run = sim
                .run_observed_probed(
                    horizon,
                    horizon,
                    &mut || {},
                    ObsConfig {
                        ring_capacity: 1 << 10,
                        fine_events: false,
                    },
                    meters,
                )
                .expect("profiler table scenario runs");
            let cpu_secs = btgs_bench::host::cpu_secs() - cpu0;
            let mut merged = WallMeter::new();
            for m in &run.meters {
                let wall = m
                    .as_any()
                    .downcast_ref::<WallMeter>()
                    .expect("profiler meters are WallMeters");
                merged.merge(wall);
            }
            KindBreakdown {
                label,
                events: run.report.events_processed,
                cpu_secs,
                meter: merged,
            }
        })
        .collect()
}

/// Renders profiler results as the committed
/// `BENCH_profile_breakdown.json`: one entry per scenario with the
/// overall CPU ns/event (the trajectory lever) and the wall-clock
/// attribution per event kind. `host` tags the numbers with the machine
/// they came from ([`btgs_bench::host::host_fingerprint`]).
pub fn profile_breakdown_json(host: &str, seconds: u64, runs: &[KindBreakdown]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"btgs-profile-breakdown-v1\",\n");
    let _ = writeln!(out, "  \"host\": \"{}\",", host.replace('"', "'"));
    let _ = writeln!(out, "  \"sim_seconds\": {seconds},");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let cpu_ns_per_event = if r.events == 0 {
            0.0
        } else {
            r.cpu_secs * 1e9 / r.events as f64
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.label);
        let _ = writeln!(out, "      \"events\": {},", r.events);
        let _ = writeln!(out, "      \"cpu_ms\": {:.2},", r.cpu_secs * 1e3);
        let _ = writeln!(out, "      \"cpu_ns_per_event\": {cpu_ns_per_event:.1},");
        out.push_str("      \"kinds\": [\n");
        let mut first = true;
        for (k, name) in EVENT_KIND_NAMES.iter().enumerate() {
            if r.meter.counts[k] == 0 {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let per = r.meter.nanos[k] as f64 / r.meter.counts[k] as f64;
            let _ = write!(
                out,
                "        {{\"name\": \"{name}\", \"events\": {}, \
                 \"wall_ns\": {}, \"wall_ns_per_event\": {per:.1}}}",
                r.meter.counts[k], r.meter.nanos[k],
            );
        }
        out.push_str("\n      ]\n");
        let _ = writeln!(out, "    }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use btgs_piconet::EngineTrace;

    fn record(
        start_ns: u64,
        end_ns: u64,
        seq: u64,
        track: u16,
        kind: TraceRecordKind,
        arg0: u64,
        arg1: u64,
    ) -> TraceRecord {
        TraceRecord {
            start_ns,
            end_ns,
            seq,
            track,
            kind,
            arg0,
            arg1,
        }
    }

    #[test]
    fn perfetto_export_names_every_track_and_clamps_spans() {
        let trace = EngineTrace {
            records: vec![
                record(0, 500, 0, 0, TraceRecordKind::Phase, 2, 0),
                record(0, 20_000, 0, 1, TraceRecordKind::IslandRun, 7, 3),
                record(1_000, 1_000, 1, 1, TraceRecordKind::RelayStage, 1, 42),
                record(20_000, 20_000, 1, 0, TraceRecordKind::RelayInject, 1, 42),
                record(3_000, 3_000, 2, 2, TraceRecordKind::Event, 0, 5),
            ],
            dropped: 0,
        };
        let json = perfetto_trace_json(&trace, 2);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"name\":\"island 0\""));
        assert!(json.contains("\"name\":\"island 1\""));
        // The 500 ns phase span clamps to a 1 µs slice.
        assert!(json.contains("\"ts\":0,\"dur\":1,\"name\":\"phase\""));
        assert!(json.contains("\"ts\":0,\"dur\":20,\"name\":\"island_run\""));
        // Fine-grained events are named by their kind tag.
        assert!(json.contains("\"name\":\"arrival\""));
        assert!(json.contains("\"target\":1,\"seq\":42"));
    }

    #[test]
    fn wall_meter_attributes_to_tags_and_merges() {
        let mut a = WallMeter::new();
        a.begin();
        a.end(0);
        a.begin();
        a.end(4);
        // A stray end without a begin is ignored.
        a.end(2);
        assert_eq!(a.counts[0], 1);
        assert_eq!(a.counts[4], 1);
        assert_eq!(a.counts[2], 0);
        assert_eq!(a.total_events(), 2);

        let mut b = WallMeter::new();
        b.begin();
        b.end(0);
        b.merge(&a);
        assert_eq!(b.counts[0], 2);
        assert_eq!(b.total_events(), 3);
        assert_eq!(b.total_nanos(), b.nanos.iter().sum::<u64>());
    }

    #[test]
    fn breakdown_json_is_shaped() {
        let mut meter = WallMeter::new();
        meter.counts[0] = 10;
        meter.nanos[0] = 1_000;
        let runs = [KindBreakdown {
            label: "chained2-20ms",
            events: 100,
            cpu_secs: 0.01,
            meter,
        }];
        let json = profile_breakdown_json("host/cpu", 5, &runs);
        assert!(json.contains("\"schema\": \"btgs-profile-breakdown-v1\""));
        assert!(json.contains("\"host\": \"host/cpu\""));
        assert!(json.contains("\"name\": \"chained2-20ms\""));
        assert!(json.contains("\"cpu_ns_per_event\": 100000.0"));
        assert!(json.contains("\"name\": \"arrival\", \"events\": 10"));
    }
}
