//! Admission playground: keep adding Guaranteed Service flows until the
//! piconet refuses, watching priorities get reshuffled along the way.
//!
//! ```text
//! cargo run --example admission_playground
//! ```

use btgs::baseband::{AmAddr, Direction};
use btgs::core::{AdmissionConfig, AdmissionController, GsRequest};
use btgs::gs::TokenBucketSpec;
use btgs::metrics::Table;
use btgs::traffic::FlowId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut controller = AdmissionController::new(AdmissionConfig::paper());
    let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;

    // Alternate directions over the slaves; rates get steeper over time so
    // the later, more demanding flows force priority reshuffles.
    let attempts: Vec<(u32, u8, Direction, f64)> = vec![
        (1, 1, Direction::SlaveToMaster, 8_800.0),
        (2, 2, Direction::SlaveToMaster, 9_600.0),
        (3, 2, Direction::MasterToSlave, 8_800.0), // piggybacks on flow 2
        (4, 3, Direction::SlaveToMaster, 12_800.0),
        (5, 4, Direction::SlaveToMaster, 19_200.0), // needs a high priority
        (6, 5, Direction::SlaveToMaster, 8_800.0),
        (7, 6, Direction::SlaveToMaster, 8_800.0),
        (8, 7, Direction::SlaveToMaster, 8_800.0),
    ];

    for (id, slave, direction, rate) in attempts {
        let request = GsRequest::new(
            FlowId(id),
            AmAddr::new(slave).expect("1..=7"),
            direction,
            tspec,
            rate,
        );
        print!("flow {id} at S{slave} ({direction}, {rate:.0} B/s): ");
        match controller.try_admit(request) {
            Ok(outcome) => {
                println!("ACCEPTED — schedule now:");
                let mut t = Table::new(vec!["prio", "entity", "flows", "x", "y", "rate [B/s]"]);
                for e in &outcome.entities {
                    t.row(vec![
                        e.priority.to_string(),
                        e.slave.to_string(),
                        e.flow_ids
                            .iter()
                            .map(|f| f.to_string())
                            .collect::<Vec<_>>()
                            .join("+"),
                        e.x.to_string(),
                        e.y.to_string(),
                        format!("{:.0}", e.rate),
                    ]);
                }
                println!("{}", t.render());
            }
            Err(e) => println!("REJECTED ({e}); schedule unchanged"),
        }
    }

    println!(
        "final: {} flows admitted across {} polled entities",
        controller.accepted().len(),
        controller.outcome().entities.len()
    );
    Ok(())
}
