//! Implementing a custom polling policy against the `Poller` trait.
//!
//! The paper treats the poller as the pluggable heart of a piconet; this
//! example writes a deliberately naive policy — poll whichever slave's
//! downlink queue is longest, else round-robin — wires it into the
//! simulator, and compares it with PFP-BE on the same workload.
//!
//! ```text
//! cargo run --example custom_poller
//! ```

use btgs::baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs::des::{DetRng, SimDuration, SimTime};
use btgs::piconet::{
    ExchangeReport, FlowSpec, MasterView, PiconetConfig, PiconetSim, PollDecision, Poller,
    RunReport,
};
use btgs::pollers::PfpBePoller;
use btgs::traffic::{CbrSource, FlowId, PoissonSource, Source};

/// Longest-downlink-queue-first, with a round-robin fallback.
struct LongestQueueFirst {
    cursor: usize,
}

impl Poller for LongestQueueFirst {
    fn decide(&mut self, _now: SimTime, view: &MasterView<'_>) -> PollDecision {
        let mut best: Option<(u64, AmAddr)> = None;
        for f in view.flows() {
            if let Some(dl) = view.downlink(f.id) {
                if dl.backlog_bytes > 0 && best.is_none_or(|(b, _)| dl.backlog_bytes > b) {
                    best = Some((dl.backlog_bytes, f.slave));
                }
            }
        }
        let slave = match best {
            Some((_, slave)) => slave,
            None => {
                let slaves = view.slaves();
                if slaves.is_empty() {
                    return PollDecision::Sleep;
                }
                self.cursor += 1;
                slaves[self.cursor % slaves.len()]
            }
        };
        PollDecision::Poll {
            slave,
            channel: LogicalChannel::BestEffort,
        }
    }

    fn on_exchange(&mut self, _report: &ExchangeReport) {}

    fn name(&self) -> &'static str {
        "longest-queue-first"
    }
}

fn scenario() -> PiconetConfig {
    let mut config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_warmup(SimDuration::from_secs(1));
    for n in 1..=4u8 {
        let slave = AmAddr::new(n).expect("valid");
        config = config
            .with_flow(FlowSpec::new(
                FlowId(n as u32),
                slave,
                Direction::MasterToSlave,
                LogicalChannel::BestEffort,
            ))
            .with_flow(FlowSpec::new(
                FlowId(10 + n as u32),
                slave,
                Direction::SlaveToMaster,
                LogicalChannel::BestEffort,
            ));
    }
    config
}

fn sources(seed: u64) -> Vec<Box<dyn Source>> {
    let root = DetRng::seed_from_u64(seed);
    let mut out: Vec<Box<dyn Source>> = Vec::new();
    for n in 1..=4u32 {
        out.push(Box::new(CbrSource::new(
            FlowId(n),
            SimDuration::from_millis(20),
            176,
            176,
            root.stream(u64::from(n)),
        )));
        out.push(Box::new(PoissonSource::new(
            FlowId(10 + n),
            SimDuration::from_millis(30),
            100,
            176,
            root.stream(u64::from(100 + n)),
        )));
    }
    out
}

fn run(poller: Box<dyn Poller>) -> Result<RunReport, Box<dyn std::error::Error>> {
    let mut sim = PiconetSim::new(scenario(), poller, Box::new(IdealChannel))?;
    for src in sources(3) {
        sim.add_source(src)?;
    }
    Ok(sim.run(SimTime::from_secs(20))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, poller) in [
        (
            "custom longest-queue-first",
            Box::new(LongestQueueFirst { cursor: 0 }) as Box<dyn Poller>,
        ),
        (
            "pfp-be",
            Box::new(PfpBePoller::new(SimDuration::from_millis(20))) as Box<dyn Poller>,
        ),
    ] {
        let report = run(poller)?;
        let mut all = btgs::metrics::DelayStats::new();
        for f in &report.flows {
            all.merge(&report.flow(f.id).delay);
        }
        println!(
            "{label:>28}: {:>6.1} kbps total, mean delay {}, max {}, wasted polls {}",
            report.total_throughput_kbps(),
            all.mean().expect("traffic"),
            all.max().expect("traffic"),
            report.be_polls.unsuccessful,
        );
    }
    println!("\nBoth policies move the offered load; the predictive poller does it");
    println!("with far fewer wasted polls — the slots the paper hands to QoS.");
    Ok(())
}
