//! A higher-rate "video" flow whose packets need several baseband segments.
//!
//! Shows the machinery the paper builds for multi-segment packets: the
//! minimum poll efficiency over a wide packet-size range, the resulting
//! poll interval, and improvement (a) of the variable interval poller
//! (packet-size-aware postponement), which saves polls whenever a packet
//! segments more efficiently than the worst case.
//!
//! ```text
//! cargo run --example video_and_background
//! ```

use btgs::baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs::core::{admit, min_poll_efficiency, AdmissionConfig, GsPoller, GsRequest};
use btgs::des::{DetRng, SimDuration, SimTime};
use btgs::gs::TokenBucketSpec;
use btgs::piconet::{FlowSpec, PiconetConfig, PiconetSim, SarPolicy};
use btgs::pollers::PfpBePoller;
use btgs::traffic::{CbrSource, FlowId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256 kbps "video" stream: 800..1000-byte frames every 28.125 ms
    // (32 kB/s at the maximum frame size).
    let video = FlowId(1);
    let s1 = AmAddr::new(1).expect("valid");
    let tspec = TokenBucketSpec::for_cbr(0.028_125, 800, 1000)?;
    let allowed = vec![PacketType::Dh1, PacketType::Dh3];

    // How badly can a frame segment? (Eq. 4 over the full frame-size range.)
    let eta = min_poll_efficiency(&SarPolicy::MaxFirst, 800, 1000, &allowed);
    println!("video eta_min = {eta:.1} B/poll (1000-byte frames move 6 DH3 segments)");

    let request = GsRequest::new(video, s1, Direction::SlaveToMaster, tspec, 36_000.0);
    let schedule = admit(&[request], &AdmissionConfig::paper())?;
    let grant = schedule.grant(video).expect("admitted");
    println!(
        "granted: x = {}, y = {}, bound = {}",
        schedule.entities[0].x, schedule.entities[0].y, grant.bound
    );

    // Background: two best-effort slaves.
    let mut config = PiconetConfig::new(allowed)
        .with_flow(FlowSpec::new(
            video,
            s1,
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ))
        .with_warmup(SimDuration::from_secs(1));
    for n in 2..=3u8 {
        config = config.with_flow(FlowSpec::new(
            FlowId(n as u32),
            AmAddr::new(n).expect("valid"),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ));
    }

    let poller = GsPoller::pfp(
        &schedule,
        SimTime::ZERO,
        Box::new(PfpBePoller::new(SimDuration::from_millis(20))),
    );
    let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(IdealChannel))?;
    let rng = DetRng::seed_from_u64(11);
    sim.add_source(Box::new(CbrSource::new(
        video,
        SimDuration::from_micros(28_125),
        800,
        1000,
        rng.stream(1),
    )))?;
    for n in 2..=3u32 {
        sim.add_source(Box::new(CbrSource::new(
            FlowId(n),
            SimDuration::from_millis(15),
            176,
            176,
            rng.stream(u64::from(n)),
        )))?;
    }

    let report = sim.run(SimTime::from_secs(30))?;
    println!("\n{}", report.to_table().render());
    let video_stats = report.flow(video);
    let max = video_stats.delay.max().expect("video flowed");
    println!(
        "video: {:.1} kbps delivered, max frame delay {} (bound {})",
        report.throughput_kbps(video),
        max,
        grant.bound
    );
    assert!(max <= grant.bound, "video delay guarantee must hold");
    println!(
        "GS polls: {} successful, {} unsuccessful — improvement (a) keeps the waste low",
        report.gs_polls.successful, report.gs_polls.unsuccessful
    );
    Ok(())
}
