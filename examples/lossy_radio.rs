//! The paper's future-work setting: a lossy radio with ARQ retransmission.
//!
//! Runs one Guaranteed Service voice flow over increasingly hostile
//! channels and shows how the 1-bit ARQ spends the poller's saved
//! bandwidth on retransmissions — and where the ideal-radio delay bound
//! starts to crack (the open problem the paper names in §5).
//!
//! ```text
//! cargo run --example lossy_radio
//! ```

use btgs::baseband::{AmAddr, BerChannel, Direction, LogicalChannel, PacketType};
use btgs::core::{admit, AdmissionConfig, GsPoller, GsRequest};
use btgs::des::{DetRng, SimDuration, SimTime};
use btgs::gs::TokenBucketSpec;
use btgs::piconet::{FlowSpec, PiconetConfig, PiconetSim};
use btgs::traffic::{CbrSource, FlowId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = FlowId(1);
    let s1 = AmAddr::new(1).expect("valid");
    let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;
    let request = GsRequest::new(flow, s1, Direction::SlaveToMaster, tspec, 12_800.0);
    let schedule = admit(&[request], &AdmissionConfig::paper())?;
    let bound = schedule.grant(flow).expect("admitted").bound;
    println!("ideal-radio delay bound: {bound}\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "BER", "delivered", "max delay", "violations", "retx slots"
    );

    for ber in [0.0, 1e-5, 1e-4, 1e-3] {
        let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
            .with_flow(FlowSpec::new(
                flow,
                s1,
                Direction::SlaveToMaster,
                LogicalChannel::GuaranteedService,
            ))
            .with_warmup(SimDuration::from_secs(1));
        let poller = GsPoller::variable(&schedule, SimTime::ZERO);
        let channel = BerChannel::new(ber, DetRng::seed_from_u64(99).stream(7));
        let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(channel))?;
        sim.add_source(Box::new(CbrSource::new(
            flow,
            SimDuration::from_millis(20),
            144,
            176,
            DetRng::seed_from_u64(99).stream(1),
        )))?;
        let report = sim.run(SimTime::from_secs(30))?;
        let stats = report.flow(flow);
        println!(
            "{:>10.0e} {:>10.1} kbps {:>12} {:>12} {:>12}",
            ber,
            report.throughput_kbps(flow),
            stats.delay.max().map(|d| d.to_string()).unwrap_or_default(),
            stats.delay.violations_of(bound),
            report.ledger.gs_retx,
        );
    }
    println!("\nARQ keeps the bytes flowing; the *bound*, computed for an ideal radio,");
    println!("erodes with loss — extending admission to budget retransmissions is the");
    println!("paper's stated future work.");
    Ok(())
}
