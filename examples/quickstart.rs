//! Quickstart: reserve a Guaranteed Service flow in a piconet, run the
//! simulator, and check the delay guarantee.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use btgs::baseband::{AmAddr, Direction, IdealChannel, LogicalChannel, PacketType};
use btgs::core::{admit, AdmissionConfig, GsPoller, GsRequest};
use btgs::des::{DetRng, SimDuration, SimTime};
use btgs::gs::TokenBucketSpec;
use btgs::piconet::{FlowSpec, PiconetConfig, PiconetSim};
use btgs::pollers::PfpBePoller;
use btgs::traffic::{CbrSource, FlowId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64 kbps voice-like flow from slave 1 to the master: one packet of
    // 144..176 bytes every 20 ms, described by the token bucket TSpec
    // p = r = 8800 B/s, b = M = 176 B, m = 144 B.
    let slave = AmAddr::new(1).expect("1..=7 are valid slave addresses");
    let flow = FlowId(1);
    let tspec = TokenBucketSpec::for_cbr(0.020, 144, 176)?;

    // Ask for a fluid service rate of 12.8 kB/s. Admission control computes
    // the poll interval x (Eq. 5), the maximum poll delay y (Fig. 2), and
    // the exported error terms C/D, and checks Eq. 9 (y <= x).
    let request = GsRequest::new(flow, slave, Direction::SlaveToMaster, tspec, 12_800.0);
    let schedule = admit(&[request], &AdmissionConfig::paper())?;
    let grant = schedule.grant(flow).expect("flow was admitted");
    println!("admitted {flow}:");
    println!("  poll interval x = {}", schedule.entities[0].x);
    println!("  max poll delay y = {}", schedule.entities[0].y);
    println!("  exported terms  {}", grant.terms);
    println!("  delay bound     {}", grant.bound);

    // Build the piconet: the GS flow plus a best-effort flow on slave 2.
    let be_flow = FlowId(2);
    let config = PiconetConfig::new(vec![PacketType::Dh1, PacketType::Dh3])
        .with_flow(FlowSpec::new(
            flow,
            slave,
            Direction::SlaveToMaster,
            LogicalChannel::GuaranteedService,
        ))
        .with_flow(FlowSpec::new(
            be_flow,
            AmAddr::new(2).expect("valid"),
            Direction::SlaveToMaster,
            LogicalChannel::BestEffort,
        ))
        .with_warmup(SimDuration::from_secs(1));

    // The paper's poller: variable-interval GS polling, PFP for leftovers.
    let poller = GsPoller::pfp(
        &schedule,
        SimTime::ZERO,
        Box::new(PfpBePoller::new(SimDuration::from_millis(25))),
    );
    let mut sim = PiconetSim::new(config, Box::new(poller), Box::new(IdealChannel))?;

    let rng = DetRng::seed_from_u64(42);
    sim.add_source(Box::new(CbrSource::new(
        flow,
        SimDuration::from_millis(20),
        144,
        176,
        rng.stream(1),
    )))?;
    sim.add_source(Box::new(CbrSource::new(
        be_flow,
        SimDuration::from_millis(10),
        176,
        176,
        rng.stream(2),
    )))?;

    // Simulate half a minute and inspect the outcome.
    let report = sim.run(SimTime::from_secs(30))?;
    println!("\n{}", report.to_table().render());

    let measured = report.flow(flow).delay.max().expect("traffic flowed");
    println!("guaranteed bound: {}", grant.bound);
    println!("measured maximum: {measured}");
    assert!(measured <= grant.bound, "the delay guarantee must hold");
    println!("guarantee held.");
    Ok(())
}
