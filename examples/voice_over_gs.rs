//! Voice over Guaranteed Service: the paper's motivating workload.
//!
//! Reproduces the Fig. 4 evaluation scenario at a chosen delay requirement:
//! four 64 kbps voice flows with a guaranteed bound, eight best-effort
//! flows soaking up whatever the schedule leaves over.
//!
//! ```text
//! cargo run --example voice_over_gs [delay_requirement_ms]
//! ```

use btgs::core::{PaperScenario, PaperScenarioParams, PollerKind};
use btgs::des::{SimDuration, SimTime};
use btgs::metrics::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dreq_ms: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(40);

    let scenario = PaperScenario::build(PaperScenarioParams {
        delay_requirement: SimDuration::from_millis(dreq_ms),
        seed: 7,
        ..Default::default()
    });

    println!("GS schedule for a {dreq_ms} ms delay requirement:");
    let mut t = Table::new(vec![
        "flow",
        "granted rate [B/s]",
        "y",
        "achievable bound",
        "guaranteed",
    ]);
    for plan in &scenario.gs_plans {
        t.row(vec![
            plan.request.id.to_string(),
            format!("{:.0}", plan.request.rate),
            plan.y.to_string(),
            plan.achievable_bound.to_string(),
            plan.guaranteed.to_string(),
        ]);
    }
    println!("{}", t.render());

    let report = scenario.run(PollerKind::PfpGs, SimTime::from_secs(60))?;
    println!("per-flow results (58 s measured):");
    println!("{}", report.to_table().render());

    let mut summary = Table::new(vec!["slave", "throughput [kbps]"]);
    for n in 1..=7u8 {
        let slave = btgs::baseband::AmAddr::new(n).expect("valid");
        summary.row(vec![
            PaperScenario::slave_legend(slave).to_string(),
            format!("{:.1}", report.slave_throughput_kbps(slave)),
        ]);
    }
    println!("{}", summary.render());
    println!(
        "slots: GS {}, BE {}, idle {} (of {} total)",
        report.ledger.gs_total(),
        report.ledger.be_total(),
        report.ledger.idle_in(report.window()),
        report.window().as_nanos() / btgs::baseband::SLOT.as_nanos(),
    );
    Ok(())
}
